#pragma once
// Batch-level compiled execution. ExecuteBatch runs an entire same-shape
// query set through one InferProgram with the weight-tier snapshot, the
// DAGRA mask-run CSRs, and the static arena plan resolved ONCE for the whole
// batch, then executes in one of two ways:
//
//  - kBatched: one pass over the step list with every row-wise step (the
//    Linear family, activations, LayerNorm, Concat2, MatVec, RowScale,
//    AddRowVector) run as a single stacked call over all B queries' rows —
//    so each packed weight panel streams through the cache once per batch
//    instead of once per query — while graph-structured steps (attention,
//    Spmm, Pool, edge/segment ops) loop per query. The plan buffer is the
//    sequential plan scaled by B: value v's query-q block lives at
//    offsets[v]*B + q*size(v), which preserves the planner's disjointness
//    proof and keeps every query's blocks contiguous for stacked GEMMs.
//  - kInterleaved: independent sequential forwards fanned across a worker
//    pool, one per query, each on its own thread-local plan buffer.
//
// Both paths are bit-identical to B sequential Execute calls: stacking rows
// into one GEMM never changes a row's bits (each output element accumulates
// in ascending-k order in its own lane, independent of m), and interleaving
// just runs the sequential executor. kAuto picks by a cost heuristic from
// the runtime TuneTable (see tune.h).

#include <cstddef>
#include <cstdint>

#include "compile/program.h"

namespace predtop::util {
class ThreadPool;
}  // namespace predtop::util

namespace predtop::compile {

/// Process-wide switch for the batch path (PREDTOP_BATCH_COMPILE, default
/// on). Off, PredictBatch / PredictMany fall back to sequential compiled
/// replay — the pre-batch behavior, bit-identical by construction.
[[nodiscard]] bool BatchCompileEnabled() noexcept;
void SetBatchCompileEnabled(bool enabled) noexcept;

enum class BatchMode {
  kAuto,         ///< cost heuristic from the TuneTable
  kBatched,      ///< stacked row-wise steps, per-query graph steps
  kInterleaved,  ///< independent sequential forwards across a pool
};

struct BatchOptions {
  BatchMode mode = BatchMode::kAuto;
  /// Pool for kInterleaved (null = an internal pool sized like the GEMM
  /// pool). kBatched ignores it: stacked GEMMs fan out through the tensor
  /// layer's own threading when large enough.
  util::ThreadPool* pool = nullptr;
};

/// Run `count` same-shape queries through `p`; `out` receives one scalar per
/// query. Every input must pass the same validation as Execute (same shape
/// class as `p`, mask/pe present when the program wants them) or the whole
/// call returns false and the caller falls back to sequential replay.
/// Results are bit-identical to `count` sequential Execute calls.
bool ExecuteBatch(const InferProgram& p, const ExecInputs* in, std::size_t count,
                  float* out, const BatchOptions& opts = {});

/// Floats held by this thread's batched plan buffer (test hook mirroring
/// ThreadPlanBufferFloats: stable across warm batches = no reallocation).
[[nodiscard]] std::int64_t ThreadBatchBufferFloats() noexcept;

/// Process-wide counters: queries executed through the stacked path /
/// the interleaved path. Surfaced via ServiceStats and cluster StatsBody.
[[nodiscard]] std::uint64_t BatchedForwards() noexcept;
[[nodiscard]] std::uint64_t InterleavedForwards() noexcept;

}  // namespace predtop::compile

#pragma once
// Shared internals of the compiled-program executors. Execute() (exec.cpp)
// and ExecuteBatch() (batch.cpp) run the same step kernels; this header is
// the seam between them so the batch executor reuses the mask-run scan, the
// tier-resolved GEMM dispatch, and the per-step kernels bit-for-bit instead
// of duplicating them. Internal to predtop::compile — not installed, not a
// public API.

#include <cstdint>
#include <memory>
#include <vector>

#include "compile/program.h"
#include "nn/linear.h"

namespace predtop::compile::detail {

/// Lanes below this are treated as -inf masked (matches the autograd mask
/// builder's -1e30 sentinel with headroom).
inline constexpr float kNegInfCut = -1e30f;

/// Per-graph open-lane structure of the DAGRA reachability mask, shared by
/// every attention step of one forward (the mask is identical across layers
/// and heads). Grow-only members so a warm rebuild never allocates.
struct MaskRuns {
  /// Per-row window hull: lanes outside [win_lo[i], win_hi[i]) are -inf.
  std::vector<std::int32_t> win_lo;
  std::vector<std::int32_t> win_hi;
  /// Open-lane runs, CSR over rows: row i's [lo, hi) pairs live at
  /// chunk_bounds[2 * chunk_start[i] .. 2 * chunk_start[i + 1]).
  std::vector<std::int32_t> chunk_start;
  std::vector<std::int32_t> chunk_bounds;
  /// Per GEMM row block (kGemmMr rows): the block's row runs merged and
  /// rounded out to packed-panel granularity — the column ranges the logits
  /// GEMM must actually compute.
  std::vector<std::int32_t> brun_start;
  std::vector<std::int32_t> brun_bounds;
  std::vector<std::int32_t> brun_scratch;
};

/// True when the program contains a fused-attention step (the only consumer
/// of MaskRuns).
[[nodiscard]] bool NeedsMaskRuns(const InferProgram& p) noexcept;

/// Scan in.mask (or synthesize full windows when the program's attention is
/// unmasked) into `runs`. Warm calls reuse the vectors' capacity.
void BuildMaskRuns(const InferProgram& p, const ExecInputs& in, MaskRuns& runs);

/// The shape/presence checks Execute performs before touching the plan
/// buffer: graph shape class, feature dims, mask/pe presence when the
/// program wants them. False = caller must fall back.
[[nodiscard]] bool ValidateInputs(const InferProgram& p, const ExecInputs& in) noexcept;

/// y(m, n) = x(m, k) * W + nothing, with the tier resolved at build time.
/// Per-row results are independent of m (each output element accumulates in
/// ascending-k order in its own lane), so the batch executor may stack many
/// queries' rows into one call and every row stays bit-identical to the
/// single-query multiply.
void LinearGemm(const Step& s, const std::shared_ptr<const nn::Linear::InferWeights>& w,
                const float* x, std::int64_t m, float* y);

[[nodiscard]] const float* LinearBias(const Step& s);

/// Operand/result pointers for one step, resolved by the caller (the two
/// executors address the plan buffer differently: sequential at offsets[v],
/// batched at offsets[v] * batch + q * size(v)).
struct StepOperands {
  const float* a = nullptr;
  const float* b = nullptr;
  const float* c = nullptr;
  float* out = nullptr;
};

/// Execute step `si` of `p` on explicit operands. `rows` is the output row
/// count to process — the output value's rows for a single forward, or
/// batch * rows for steps whose math is purely row-wise/element-wise (the
/// Linear family, activations, LayerNorm, Concat2, MatVec, RowScale,
/// AddRowVector), which is how the batch executor amortizes one stacked GEMM
/// over the whole query set. Graph-structured steps (attention, Spmm, Pool,
/// edge/segment ops) must be called per query with that query's `in` and
/// `runs`. `scratch` must hold p.scratch_floats floats.
void RunStep(const InferProgram& p, std::size_t si, const InferProgram::Snapshot& snap,
             const ExecInputs& in, const StepOperands& ops, std::int64_t rows,
             float* scratch, const MaskRuns* runs);

/// True when step kind's math is purely row-wise/element-wise over planned
/// operands, i.e. safe to run once over the whole stacked batch.
[[nodiscard]] constexpr bool RowwiseBatchable(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kLinear:
    case OpKind::kLinearAct:
    case OpKind::kLinearResidualNorm:
    case OpKind::kScale:
    case OpKind::kAdd:
    case OpKind::kRelu:
    case OpKind::kLeakyRelu:
    case OpKind::kLayerNorm:
    case OpKind::kConcat2:
    case OpKind::kMatVec:
    case OpKind::kRowScale:
    case OpKind::kAddRowVector:
      return true;
    default:
      return false;
  }
}

}  // namespace predtop::compile::detail

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "compile/exec_detail.h"
#include "compile/program.h"
#include "tensor/fused.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/sparse.h"

namespace predtop::compile {

namespace {

/// Thread-local execution state: the flat plan buffer and the per-row mask
/// windows. Grow-only so a warm forward never allocates.
struct ExecState {
  std::vector<float> buf;
  detail::MaskRuns runs;
};

ExecState& ThreadExecState() {
  thread_local ExecState state;
  return state;
}

}  // namespace

namespace detail {

bool NeedsMaskRuns(const InferProgram& p) noexcept {
  for (const Step& s : p.steps) {
    if (s.kind == OpKind::kFusedAttention) return true;
  }
  return false;
}

bool ValidateInputs(const InferProgram& p, const ExecInputs& in) noexcept {
  if (in.g == nullptr || p.output == kNoValue) return false;
  const graph::EncodedGraph& g = *in.g;
  if (g.num_nodes != p.num_nodes) return false;
  if (static_cast<std::int64_t>(g.edge_src.size()) != p.num_edges) return false;
  if (g.features.rank() != 2 || g.features.dim(0) != p.num_nodes ||
      g.features.dim(1) != p.feature_dim) {
    return false;
  }

  bool wants_mask = false;
  bool wants_pe = false;
  for (const Step& s : p.steps) {
    if ((s.kind == OpKind::kFusedAttention || s.kind == OpKind::kAttnHeads) && s.use_mask) {
      wants_mask = true;
    }
  }
  for (const ValueInfo& v : p.values) {
    if (v.external == External::kDepthPe) wants_pe = true;
  }
  if (wants_mask && (in.mask == nullptr || in.mask->rank() != 2 ||
                     in.mask->dim(0) != p.num_nodes || in.mask->dim(1) != p.num_nodes)) {
    return false;
  }
  if (wants_pe && in.pe == nullptr) return false;
  return true;
}

/// y(m, n) = x(m, k) * W with the tier resolved at build time — the
/// same kernels (and where applicable the same cached packs) as
/// nn::Linear::InferForward, minus the per-call mutex and dispatch.
void LinearGemm(const Step& s, const std::shared_ptr<const nn::Linear::InferWeights>& w,
                const float* x, std::int64_t m, float* y) {
  const nn::Linear& lin = *s.linear;
  const std::int64_t k = lin.InFeatures();
  const std::int64_t n = lin.OutFeatures();
  switch (s.tier) {
    case GemmTier::kPacked:
      switch (w->prec) {
        case tensor::GemmPrec::kBf16:
          tensor::MatMulPackedB16Into(x, m, w->pack16, y);
          break;
        case tensor::GemmPrec::kInt8:
          tensor::MatMulPackedB8Into(x, m, w->pack8, y);
          break;
        default:
          tensor::MatMulPackedInto(x, m, w->pack, y);
          break;
      }
      break;
    case GemmTier::kNarrow: {
      const float* wt = w->weight_t.data().data();
      for (std::int64_t i = 0; i < m; ++i) {
        const float* xrow = x + i * k;
        float* yrow = y + i * n;
        for (std::int64_t j = 0; j < n; ++j) {
          yrow[j] = tensor::simd::Dot(xrow, wt + j * k, k);
        }
      }
      break;
    }
    case GemmTier::kNaive: {
      std::fill(y, y + m * n, 0.0f);
      const float* pw = lin.Weight().value().data().data();
      for (std::int64_t i = 0; i < m; ++i) {
        const float* xrow = x + i * k;
        float* yrow = y + i * n;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float av = xrow[kk];
          if (av == 0.0f) continue;  // same skip as the training kernel
          const float* wrow = pw + kk * n;
          for (std::int64_t j = 0; j < n; ++j) yrow[j] += av * wrow[j];
        }
      }
      break;
    }
  }
}

const float* LinearBias(const Step& s) {
  const autograd::Variable* b = s.linear->Bias();
  return b != nullptr ? b->value().data().data() : nullptr;
}

void BuildMaskRuns(const InferProgram& p, const ExecInputs& in, MaskRuns& state) {
  bool wants_mask = false;
  for (const Step& s : p.steps) {
    if (s.kind == OpKind::kFusedAttention && s.use_mask) wants_mask = true;
  }
  const std::int64_t n = p.num_nodes;
  if (static_cast<std::int64_t>(state.win_lo.size()) < n) {
    state.win_lo.resize(static_cast<std::size_t>(n));
    state.win_hi.resize(static_cast<std::size_t>(n));
  }
  state.chunk_start.resize(static_cast<std::size_t>(n) + 1);
  state.chunk_bounds.clear();
  state.chunk_start[0] = 0;
  if (wants_mask && in.mask != nullptr) {
    const float* m = in.mask->data().data();
    for (std::int64_t i = 0; i < n; ++i) {
      const float* mrow = m + i * n;
      std::int64_t j = 0;
      while (j < n) {
        while (j < n && mrow[j] < kNegInfCut) ++j;
        if (j >= n) break;
        const std::int64_t lo = j;
        while (j < n && mrow[j] >= kNegInfCut) ++j;
        state.chunk_bounds.push_back(static_cast<std::int32_t>(lo));
        state.chunk_bounds.push_back(static_cast<std::int32_t>(j));
      }
      const std::int32_t end = static_cast<std::int32_t>(state.chunk_bounds.size() / 2);
      const std::int32_t begin = state.chunk_start[static_cast<std::size_t>(i)];
      state.chunk_start[static_cast<std::size_t>(i) + 1] = end;
      // Row window = hull of the row's runs (empty rows keep lo == hi == n,
      // matching the historical two-ended scan).
      if (end > begin) {
        state.win_lo[static_cast<std::size_t>(i)] = state.chunk_bounds[2 * begin];
        state.win_hi[static_cast<std::size_t>(i)] = state.chunk_bounds[2 * end - 1];
      } else {
        state.win_lo[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(n);
        state.win_hi[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(n);
      }
    }
  } else {
    std::fill(state.win_lo.begin(), state.win_lo.begin() + n, 0);
    std::fill(state.win_hi.begin(), state.win_hi.begin() + n,
              static_cast<std::int32_t>(p.num_nodes));
    for (std::int64_t i = 0; i < n; ++i) {
      state.chunk_bounds.push_back(0);
      state.chunk_bounds.push_back(static_cast<std::int32_t>(n));
      state.chunk_start[static_cast<std::size_t>(i) + 1] =
          static_cast<std::int32_t>(i) + 1;
    }
  }
  // Merge each GEMM row block's runs at packed-panel granularity: the
  // logits GEMM computes only these column ranges (a panel in a gap is
  // provably outside every block row's open runs).
  const std::int64_t blocks = (n + tensor::kGemmMr - 1) / tensor::kGemmMr;
  state.brun_start.resize(static_cast<std::size_t>(blocks) + 1);
  state.brun_bounds.clear();
  state.brun_start[0] = 0;
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t r0 = b * tensor::kGemmMr;
    const std::int64_t r1 = std::min<std::int64_t>(n, r0 + tensor::kGemmMr);
    auto& runs = state.brun_scratch;
    runs.clear();
    for (std::int64_t i = r0; i < r1; ++i) {
      for (std::int32_t c = state.chunk_start[static_cast<std::size_t>(i)];
           c < state.chunk_start[static_cast<std::size_t>(i) + 1]; ++c) {
        const std::int32_t lo =
            state.chunk_bounds[2 * c] / tensor::kGemmPanel * tensor::kGemmPanel;
        const std::int32_t hi = static_cast<std::int32_t>(std::min<std::int64_t>(
            n, (state.chunk_bounds[2 * c + 1] + tensor::kGemmPanel - 1) /
                   tensor::kGemmPanel * tensor::kGemmPanel));
        runs.push_back(lo);
        runs.push_back(hi);
      }
    }
    // Sort run pairs by lo, then sweep-merge overlapping/adjacent ranges.
    const std::int64_t pairs = static_cast<std::int64_t>(runs.size()) / 2;
    for (std::int64_t a = 1; a < pairs; ++a) {  // insertion sort; runs are few
      const std::int32_t lo = runs[2 * a], hi = runs[2 * a + 1];
      std::int64_t t = a - 1;
      while (t >= 0 && runs[2 * t] > lo) {
        runs[2 * t + 2] = runs[2 * t];
        runs[2 * t + 3] = runs[2 * t + 1];
        --t;
      }
      runs[2 * t + 2] = lo;
      runs[2 * t + 3] = hi;
    }
    for (std::int64_t a = 0; a < pairs; ++a) {
      const std::int32_t lo = runs[2 * a], hi = runs[2 * a + 1];
      const std::size_t sz = state.brun_bounds.size();
      if (sz > state.brun_start[static_cast<std::size_t>(b)] * 2ull &&
          lo <= state.brun_bounds[sz - 1]) {
        state.brun_bounds[sz - 1] = std::max(state.brun_bounds[sz - 1], hi);
      } else {
        state.brun_bounds.push_back(lo);
        state.brun_bounds.push_back(hi);
      }
    }
    state.brun_start[static_cast<std::size_t>(b) + 1] =
        static_cast<std::int32_t>(state.brun_bounds.size() / 2);
  }
}

namespace {

/// Mask-aware fused attention: combined q|k|v projection, per-head windowed
/// logits GEMM, deferred softmax restricted to each row's open-lane window,
/// and a k-windowed weights*V GEMM written straight into the head's column
/// block of the output. Lanes outside a row's window are provably -inf
/// masked, so their weights are exact zeros and skipping them leaves every
/// surviving accumulation term bit-identical.
void RunFusedAttention(const InferProgram& p, const Step& s,
                       const InferProgram::Snapshot& snap, const ExecInputs& in,
                       const float* x, float* y, float* scratch, const MaskRuns& state) {
  const nn::MultiheadMaskedAttention& at = *s.attn;
  const std::int64_t n = p.num_nodes;
  const std::int64_t d = at.Dim();
  const std::int64_t hd = at.HeadDim();
  const std::int64_t d3 = 3 * d;
  const InferProgram::AttnSnap& as = snap.attn[static_cast<std::size_t>(s.aux)];

  float* qkv = scratch;
  float* logits = qkv + n * d3;
  float* invs = logits + n * n;
  float* packbuf = invs + n;

  switch (snap.prec) {
    case tensor::GemmPrec::kBf16:
      tensor::MatMulPackedB16StridedInto(x, n, d, as.qkv16, qkv, d3);
      break;
    case tensor::GemmPrec::kInt8:
      tensor::MatMulPackedB8StridedInto(x, n, d, as.qkv8, qkv, d3);
      break;
    default:
      tensor::MatMulPackedViewStridedInto(x, n, d, tensor::ViewOf(as.qkv), qkv, d3);
      break;
  }
  tensor::fused::BiasActRows(qkv, n, d3, d3, as.bias.data(), tensor::fused::Act::kNone);
  // Fold 1/sqrt(dk) into the q columns (post-bias, exactly like the op-by-op
  // fast path's ScaleInPlace on the q projection).
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = qkv + i * d3;
    for (std::int64_t j = 0; j < d; ++j) row[j] *= s.scalar;
  }

  const std::int32_t* wlo = state.win_lo.data();
  const std::int32_t* whi = state.win_hi.data();
  const std::int32_t* cstart = state.chunk_start.data();
  const std::int32_t* cbounds = state.chunk_bounds.data();
  const std::int32_t* bstart = state.brun_start.data();
  const std::int32_t* bbounds = state.brun_bounds.data();

  for (std::int64_t h = 0; h < at.Heads(); ++h) {
    const std::int64_t off = h * hd;
    // logits = q_h k_h^T over each row block's merged panel runs (the chunked
    // softmax never reads the gaps between runs).
    tensor::PackBTransposedIntoBuf(qkv + d + off, hd, n, packbuf, d3);
    const tensor::PackedBView kview{packbuf, hd, n};
    for (std::int64_t i = 0; i < n; i += tensor::kGemmMr) {
      const int mr = static_cast<int>(std::min<std::int64_t>(tensor::kGemmMr, n - i));
      const std::int64_t b = i / tensor::kGemmMr;
      for (std::int32_t r = bstart[b]; r < bstart[b + 1]; ++r) {
        tensor::PackedViewTile(qkv + i * d3 + off, d3, kview, logits + i * n, n, mr,
                               bbounds[2 * r], bbounds[2 * r + 1], 0, hd);
      }
    }
    for (std::int64_t i = 0; i < n; ++i) {
      tensor::fused::DeferredSoftmaxRowChunks(logits + i * n, logits + i * n, n,
                                              cbounds + 2 * cstart[i],
                                              cstart[i + 1] - cstart[i], &invs[i]);
    }
    // y[:, off:off+hd] = weights * v_h, restricted to each block's union of
    // open k lanes (the zeroed lanes outside contribute exact zeros anyway).
    tensor::PackBIntoBuf(qkv + 2 * d + off, n, hd, packbuf, d3);
    const tensor::PackedBView vview{packbuf, n, hd};
    for (std::int64_t i = 0; i < n; i += tensor::kGemmMr) {
      const int mr = static_cast<int>(std::min<std::int64_t>(tensor::kGemmMr, n - i));
      std::int64_t blo = n, bhi = 0;
      for (int r = 0; r < mr; ++r) {
        blo = std::min<std::int64_t>(blo, wlo[i + r]);
        bhi = std::max<std::int64_t>(bhi, whi[i + r]);
      }
      tensor::PackedViewTile(logits + i * n, n, vview, y + i * d + off, d, mr, 0, hd,
                             std::min(blo, bhi), bhi);
    }
    for (std::int64_t i = 0; i < n; ++i) {
      const float inv = invs[i];
      float* row = y + i * d + off;
      for (std::int64_t j = 0; j < hd; ++j) row[j] *= inv;
    }
  }
}

/// Unfused attention heads, mirroring MultiheadMaskedAttention::InferForward
/// bit for bit at the shape classes the fuser declines: the same
/// UsePackedGemm gates pick between the strided-deferred branch and the
/// slice-based branch, and within each GEMM the same packed/narrow/naive
/// tier dispatch as infer::MatMul runs. Head outputs land directly in their
/// column block of `y`, which is bitwise the ConcatCols result.
void RunAttnHeads(const InferProgram& p, const Step& s, const ExecInputs& in,
                  const float* q, const float* k, const float* v, float* y,
                  float* scratch) {
  const nn::MultiheadMaskedAttention& at = *s.attn;
  const std::int64_t n = p.num_nodes;
  const std::int64_t d = at.Dim();
  const std::int64_t hd = at.HeadDim();
  const float* mask =
      (s.use_mask && in.mask != nullptr) ? in.mask->data().data() : nullptr;

  if (tensor::UsePackedGemm(n, hd, n) && tensor::UsePackedGemm(n, n, hd)) {
    // Strided fast branch: per-head packs read q/k/v columns in place and the
    // softmax defers normalization to the (n, hd) output.
    float* logits = scratch;
    float* weights = logits + n * n;  // kept apart so the retry rereads logits
    float* maxes = weights + n * n;
    float* invs = maxes + n;
    float* packbuf = invs + n;
    for (std::int64_t h = 0; h < at.Heads(); ++h) {
      const std::int64_t off = h * hd;
      tensor::PackBTransposedIntoBuf(k + off, hd, n, packbuf, d);
      tensor::MatMulPackedViewStridedInto(q + off, n, d, {packbuf, hd, n}, logits, n);
      // infer::RowSoftmaxDeferred mirror: unmasked row max as the exp shift
      // (two separate streaming phases), masked-max retry on underflow.
      for (std::int64_t i = 0; i < n; ++i) {
        maxes[i] = tensor::simd::MaskedRowMax(logits + i * n, nullptr, n);
      }
      for (std::int64_t i = 0; i < n; ++i) {
        const float* lrow = logits + i * n;
        const float* mrow = mask != nullptr ? mask + i * n : nullptr;
        float* orow = weights + i * n;
        const float total =
            tensor::simd::ExpShiftedNonPositiveSumN(lrow, mrow, maxes[i], orow, n);
        invs[i] = total > 0.0f
                      ? 1.0f / total
                      : tensor::fused::MaskedSoftmaxRetryRow(lrow, mrow, orow, n);
      }
      tensor::PackBIntoBuf(v + off, n, hd, packbuf, d);
      tensor::MatMulPackedViewStridedInto(weights, n, n, {packbuf, n, hd}, y + off, d);
      for (std::int64_t i = 0; i < n; ++i) {
        const float inv = invs[i];
        float* row = y + i * d + off;
        for (std::int64_t j = 0; j < hd; ++j) row[j] *= inv;
      }
    }
    return;
  }

  // Slice-based branch: materialized per-head slices, normalized masked
  // softmax, infer::MatMul tier dispatch per GEMM.
  float* qh = scratch;
  float* kh = qh + n * hd;
  float* vh = kh + n * hd;
  float* logits = vh + n * hd;
  float* tmp = logits + n * n;  // materialized transposes for naive/narrow tiers
  float* packbuf = tmp + n * hd;
  for (std::int64_t h = 0; h < at.Heads(); ++h) {
    const std::int64_t off = h * hd;
    for (std::int64_t i = 0; i < n; ++i) {
      std::memcpy(qh + i * hd, q + i * d + off, static_cast<std::size_t>(hd) * sizeof(float));
      std::memcpy(kh + i * hd, k + i * d + off, static_cast<std::size_t>(hd) * sizeof(float));
      std::memcpy(vh + i * hd, v + i * d + off, static_cast<std::size_t>(hd) * sizeof(float));
    }
    // logits = qh * kh^T (m=n, k=hd, n=n).
    if (tensor::UsePackedGemm(n, hd, n)) {
      tensor::PackBTransposedIntoBuf(kh, hd, n, packbuf, hd);
      tensor::MatMulPackedViewStridedInto(qh, n, hd, {packbuf, hd, n}, logits, n);
    } else if (n < 16 && hd >= 16) {
      // Narrow tier: B is kh^T, whose transpose is kh itself — Dot over hd.
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
          logits[i * n + j] = tensor::simd::Dot(qh + i * hd, kh + j * hd, hd);
        }
      }
    } else {
      // Naive i-k-j against a materialized kh^T (hd, n), zero-skip like
      // tensor::MatMulNaive.
      for (std::int64_t kk = 0; kk < hd; ++kk) {
        for (std::int64_t i = 0; i < n; ++i) tmp[kk * n + i] = kh[i * hd + kk];
      }
      std::fill(logits, logits + n * n, 0.0f);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* arow = qh + i * hd;
        float* crow = logits + i * n;
        for (std::int64_t kk = 0; kk < hd; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = tmp + kk * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
    // attn = masked row softmax, normalized in place (infer::RowSoftmax's
    // exact pass structure; lane-wise, so in-place is safe).
    for (std::int64_t i = 0; i < n; ++i) {
      float* lrow = logits + i * n;
      const float* mrow = mask != nullptr ? mask + i * n : nullptr;
      const float maxv = tensor::simd::MaskedRowMax(lrow, mrow, n);
      if (maxv < kNegInfCut) {  // fully masked row
        std::fill(lrow, lrow + n, 0.0f);
        continue;
      }
      tensor::simd::ExpShiftedNonPositiveN(lrow, mrow, maxv, lrow, n);
      const float inv = 1.0f / tensor::simd::Sum(lrow, n);
      for (std::int64_t j = 0; j < n; ++j) lrow[j] *= inv;
    }
    // y[:, off:off+hd] = attn * vh (m=n, k=n, n=hd).
    if (tensor::UsePackedGemm(n, n, hd)) {
      tensor::PackBIntoBuf(vh, n, hd, packbuf, hd);
      tensor::MatMulPackedViewStridedInto(logits, n, n, {packbuf, n, hd}, y + off, d);
    } else if (hd < 16 && n >= 16) {
      // Narrow tier: Dot over the long k dimension against vh^T.
      for (std::int64_t kk = 0; kk < n; ++kk) {
        for (std::int64_t j = 0; j < hd; ++j) tmp[j * n + kk] = vh[kk * hd + j];
      }
      for (std::int64_t i = 0; i < n; ++i) {
        float* row = y + i * d + off;
        for (std::int64_t j = 0; j < hd; ++j) {
          row[j] = tensor::simd::Dot(logits + i * n, tmp + j * n, n);
        }
      }
    } else {
      for (std::int64_t i = 0; i < n; ++i) {
        std::fill(y + i * d + off, y + i * d + off + hd, 0.0f);
      }
      for (std::int64_t i = 0; i < n; ++i) {
        const float* arow = logits + i * n;
        float* crow = y + i * d + off;
        for (std::int64_t kk = 0; kk < n; ++kk) {
          const float av = arow[kk];
          if (av == 0.0f) continue;
          const float* brow = vh + kk * hd;
          for (std::int64_t j = 0; j < hd; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

void RunSegmentSoftmax(const InferProgram& p, const ExecInputs& in, const float* x,
                       std::int64_t rows, std::int64_t cols, float* y, float* scratch) {
  // Mirror of infer::SegmentSoftmax: per-segment max, exp + denominator,
  // normalize (same std::exp, same pass structure).
  const std::vector<std::int32_t>& seg = in.g->edge_dst;
  const std::int64_t n = p.num_nodes;
  float* maxv = scratch;
  float* denom = scratch + n * cols;
  std::fill(maxv, maxv + n * cols, -std::numeric_limits<float>::infinity());
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int64_t s = seg[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) {
      maxv[s * cols + j] = std::max(maxv[s * cols + j], x[i * cols + j]);
    }
  }
  std::fill(denom, denom + n * cols, 0.0f);
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int64_t s = seg[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) {
      const float e = std::exp(x[i * cols + j] - maxv[s * cols + j]);
      y[i * cols + j] = e;
      denom[s * cols + j] += e;
    }
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int64_t s = seg[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) y[i * cols + j] /= denom[s * cols + j];
  }
}

}  // namespace

void RunStep(const InferProgram& p, std::size_t si, const InferProgram::Snapshot& snap,
             const ExecInputs& in, const StepOperands& ops, std::int64_t rows,
             float* scratch, const MaskRuns* runs) {
  const Step& s = p.steps[si];
  const std::int64_t cols = p.values[static_cast<std::size_t>(s.out)].cols;
  const graph::EncodedGraph& g = *in.g;
  switch (s.kind) {
    case OpKind::kLinear:
    case OpKind::kLinearAct: {
      LinearGemm(s, snap.lin[si], ops.a, rows, ops.out);
      tensor::fused::BiasActRows(ops.out, rows, cols, cols, LinearBias(s), s.act);
      break;
    }
    case OpKind::kLinearResidualNorm: {
      float* y = ops.out;
      LinearGemm(s, snap.lin[si], ops.a, rows, y);
      const float* bias = LinearBias(s);
      const float* r = ops.b;
      const float* gain = s.gain->value().data().data();
      const float* beta = s.bias->value().data().data();
      for (std::int64_t i = 0; i < rows; ++i) {
        float* row = y + i * cols;
        const float* rrow = r + i * cols;
        // Same per-element order as the unfused chain: (+bias), +residual,
        // then the LayerNorm row kernel in place.
        if (bias != nullptr) {
          for (std::int64_t j = 0; j < cols; ++j) row[j] = (row[j] + bias[j]) + rrow[j];
        } else {
          for (std::int64_t j = 0; j < cols; ++j) row[j] += rrow[j];
        }
        tensor::fused::LayerNormRow(row, gain, beta, row, cols);
      }
      break;
    }
    case OpKind::kFusedAttention:
      RunFusedAttention(p, s, snap, in, ops.a, ops.out, scratch, *runs);
      break;
    case OpKind::kScale: {
      float* a = ops.out;
      const std::int64_t total = rows * cols;
      for (std::int64_t i = 0; i < total; ++i) a[i] *= s.scalar;
      break;
    }
    case OpKind::kAdd: {
      float* a = ops.out;
      const float* b = ops.b;
      const std::int64_t total = rows * cols;
      for (std::int64_t i = 0; i < total; ++i) a[i] += b[i];
      break;
    }
    case OpKind::kRelu: {
      float* a = ops.out;
      const std::int64_t total = rows * cols;
      for (std::int64_t i = 0; i < total; ++i) a[i] = a[i] > 0.0f ? a[i] : 0.0f;
      break;
    }
    case OpKind::kLeakyRelu: {
      float* a = ops.out;
      const std::int64_t total = rows * cols;
      for (std::int64_t i = 0; i < total; ++i) {
        a[i] = a[i] > 0.0f ? a[i] : s.scalar * a[i];
      }
      break;
    }
    case OpKind::kLayerNorm: {
      const float* x = ops.a;
      float* y = ops.out;
      const float* gain = s.gain->value().data().data();
      const float* beta = s.bias->value().data().data();
      for (std::int64_t i = 0; i < rows; ++i) {
        tensor::fused::LayerNormRow(x + i * cols, gain, beta, y + i * cols, cols);
      }
      break;
    }
    case OpKind::kAttnHeads:
      RunAttnHeads(p, s, in, ops.a, ops.b, ops.c, ops.out, scratch);
      break;
    case OpKind::kSpmm: {
      const tensor::Csr& a = *g.adj_norm;
      const float* x = ops.a;
      float* y = ops.out;
      std::fill(y, y + rows * cols, 0.0f);
      for (std::int64_t i = 0; i < a.rows; ++i) {
        float* yrow = y + i * cols;
        for (std::int64_t e = a.row_ptr[static_cast<std::size_t>(i)];
             e < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++e) {
          const float av = a.values[static_cast<std::size_t>(e)];
          const float* xrow =
              x + static_cast<std::int64_t>(a.col_idx[static_cast<std::size_t>(e)]) * cols;
          for (std::int64_t j = 0; j < cols; ++j) yrow[j] += av * xrow[j];
        }
      }
      break;
    }
    case OpKind::kPool: {
      const ValueInfo& av = p.values[static_cast<std::size_t>(s.a)];
      const float* x = ops.a;
      float* y = ops.out;
      std::fill(y, y + cols, 0.0f);
      for (std::int64_t i = 0; i < av.rows; ++i) {
        const float* xrow = x + i * cols;
        for (std::int64_t j = 0; j < cols; ++j) y[j] += xrow[j];
      }
      break;
    }
    case OpKind::kConcat2: {
      const ValueInfo& av = p.values[static_cast<std::size_t>(s.a)];
      const ValueInfo& bv = p.values[static_cast<std::size_t>(s.b)];
      const float* a = ops.a;
      const float* b = ops.b;
      float* y = ops.out;
      for (std::int64_t i = 0; i < rows; ++i) {
        std::memcpy(y + i * cols, a + i * av.cols,
                    static_cast<std::size_t>(av.cols) * sizeof(float));
        std::memcpy(y + i * cols + av.cols, b + i * bv.cols,
                    static_cast<std::size_t>(bv.cols) * sizeof(float));
      }
      break;
    }
    case OpKind::kMatVec: {
      const ValueInfo& av = p.values[static_cast<std::size_t>(s.a)];
      const std::int64_t k = av.cols;
      const float* x = ops.a;
      const float* vec = s.gain->value().data().data();
      float* y = ops.out;
      if (k >= 16) {
        // infer::MatMul's narrow-output tier (n == 1 < 16, k >= 16).
        for (std::int64_t i = 0; i < rows; ++i) {
          y[i] = tensor::simd::Dot(x + i * k, vec, k);
        }
      } else {
        // Mirror the naive tier's sequential ascending-k accumulation.
        for (std::int64_t i = 0; i < rows; ++i) {
          const float* xrow = x + i * k;
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            if (xrow[kk] == 0.0f) continue;
            acc += xrow[kk] * vec[kk];
          }
          y[i] = acc;
        }
      }
      break;
    }
    case OpKind::kEdgeScores: {
      const float* ss = ops.a;
      const float* ds = ops.b;
      float* y = ops.out;
      const std::vector<std::int32_t>& src = g.edge_src;
      const std::vector<std::int32_t>& dst = g.edge_dst;
      for (std::int64_t e = 0; e < rows; ++e) {
        y[e] = ss[src[static_cast<std::size_t>(e)]] + ds[dst[static_cast<std::size_t>(e)]];
      }
      break;
    }
    case OpKind::kSegmentSoftmax:
      RunSegmentSoftmax(p, in, ops.a, rows, cols, ops.out, scratch);
      break;
    case OpKind::kGatherRows: {
      const float* x = ops.a;
      float* y = ops.out;
      const std::vector<std::int32_t>& idx = s.edge_sel == 0 ? g.edge_src : g.edge_dst;
      for (std::int64_t e = 0; e < rows; ++e) {
        std::memcpy(y + e * cols, x + idx[static_cast<std::size_t>(e)] * cols,
                    static_cast<std::size_t>(cols) * sizeof(float));
      }
      break;
    }
    case OpKind::kRowScale: {
      float* x = ops.out;
      const float* sc = ops.b;
      for (std::int64_t i = 0; i < rows; ++i) {
        float* row = x + i * cols;
        for (std::int64_t j = 0; j < cols; ++j) row[j] *= sc[i];
      }
      break;
    }
    case OpKind::kSegmentSum: {
      const ValueInfo& av = p.values[static_cast<std::size_t>(s.a)];
      const float* x = ops.a;
      float* y = ops.out;
      std::fill(y, y + rows * cols, 0.0f);
      const std::vector<std::int32_t>& seg = g.edge_dst;
      for (std::int64_t e = 0; e < av.rows; ++e) {
        const float* xrow = x + e * cols;
        float* yrow = y + seg[static_cast<std::size_t>(e)] * cols;
        for (std::int64_t j = 0; j < cols; ++j) yrow[j] += xrow[j];
      }
      break;
    }
    case OpKind::kAddRowVector: {
      float* x = ops.out;
      const float* bias = s.gain->value().data().data();
      for (std::int64_t i = 0; i < rows; ++i) {
        float* row = x + i * cols;
        for (std::int64_t j = 0; j < cols; ++j) row[j] += bias[j];
      }
      break;
    }
  }
}

}  // namespace detail

std::int64_t ThreadPlanBufferFloats() noexcept {
  return static_cast<std::int64_t>(ThreadExecState().buf.size());
}

bool Execute(const InferProgram& p, const ExecInputs& in, float* out) {
  if (out == nullptr || !detail::ValidateInputs(p, in)) return false;
  const graph::EncodedGraph& g = *in.g;

  ExecState& state = ThreadExecState();
  const std::int64_t need = p.PlanFloats();
  if (static_cast<std::int64_t>(state.buf.size()) < need) {
    state.buf.resize(static_cast<std::size_t>(need));
  }
  float* base = state.buf.data();
  float* scratch = base + p.arena_floats;

  // Per-row open-lane windows of the reachability mask, shared by every
  // attention step (the mask is identical across layers and heads). A lane
  // outside [lo, hi) is -inf masked; lanes inside may still be masked and
  // are handled by the windowed softmax.
  if (detail::NeedsMaskRuns(p)) detail::BuildMaskRuns(p, in, state.runs);

  const auto snap = p.CurrentSnapshot();

  const auto ptr_of = [&](ValueId v) -> const float* {
    if (v == kNoValue) return nullptr;
    const ValueInfo& vi = p.values[static_cast<std::size_t>(v)];
    switch (vi.external) {
      case External::kFeatures: return g.features.data().data();
      case External::kDepthPe: return in.pe;
      case External::kNone: break;
    }
    return base + p.offsets[static_cast<std::size_t>(v)];
  };

  for (std::size_t si = 0; si < p.steps.size(); ++si) {
    const Step& s = p.steps[si];
    const detail::StepOperands ops{
        ptr_of(s.a), ptr_of(s.b), ptr_of(s.c),
        base + p.offsets[static_cast<std::size_t>(s.out)]};
    detail::RunStep(p, si, *snap, in, ops,
                    p.values[static_cast<std::size_t>(s.out)].rows, scratch, &state.runs);
  }

  *out = base[p.offsets[static_cast<std::size_t>(p.output)]];
  return true;
}

}  // namespace predtop::compile

#pragma once
// Global LRU cache of compiled inference programs, keyed by
// (owner instance, shape class). Programs hold raw pointers into their
// owner's modules, so the owner's destructor MUST evict its entries
// (core::StagePredictor does) — otherwise a hot-swapped model would leak its
// programs *and* leave dangling weight pointers behind, the compiled-path
// cousin of the packed-weight-cache leak this PR fixes.
//
// Misses for predictors that cannot be compiled are cached as null markers so
// the builder runs once per shape class, not once per call.

#include <cstdint>
#include <memory>
#include <optional>

#include "compile/program.h"

namespace predtop::compile {

/// PREDTOP_COMPILE (default 1) gates every compiled-path caller;
/// SetCompileEnabled is the in-process override (benchmarks A/B with it).
[[nodiscard]] bool CompileEnabled() noexcept;
void SetCompileEnabled(bool enabled) noexcept;

/// Monotonic owner ids for program cache keys (one per StagePredictor).
[[nodiscard]] std::uint64_t NextOwnerId() noexcept;

class ProgramCache {
 public:
  [[nodiscard]] static ProgramCache& Global();

  /// Cached program (possibly a null marker) for the key, bumping recency.
  /// nullopt = never built for this key.
  [[nodiscard]] std::optional<std::shared_ptr<InferProgram>> Lookup(
      std::uint64_t owner, std::int64_t num_nodes, std::int64_t num_edges);

  /// Insert (evicting least-recently-used entries beyond capacity). Null
  /// programs are legal and mark "not compilable for this shape".
  void Insert(std::uint64_t owner, std::int64_t num_nodes, std::int64_t num_edges,
              std::shared_ptr<InferProgram> program);

  /// Drop every entry of one owner (called from ~StagePredictor).
  void EvictOwner(std::uint64_t owner);

  [[nodiscard]] std::size_t Size() const;
  void Clear();
  /// Test hook; the process default comes from PREDTOP_COMPILE_CACHE.
  void SetCapacity(std::size_t capacity);

  /// Lifetime Lookup outcomes (hit = key present, even as a null marker;
  /// miss = never built). Monotonic — Clear/EvictOwner don't reset them.
  /// Surfaced through serve::ServiceStats and the cluster StatsBody.
  [[nodiscard]] std::uint64_t Hits() const noexcept;
  [[nodiscard]] std::uint64_t Misses() const noexcept;

 private:
  ProgramCache();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace predtop::compile

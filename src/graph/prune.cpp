#include "graph/prune.h"

#include <stdexcept>

namespace predtop::graph {

PruneResult PruneDag(const OpDag& dag,
                     const std::function<bool(const DagNode&)>& should_prune) {
  const auto order = dag.TopologicalOrder();
  if (!order) throw std::invalid_argument("PruneDag: graph has a cycle");
  const auto n = static_cast<std::size_t>(dag.NumNodes());

  std::vector<bool> pruned(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const DagNode& node = dag.Node(static_cast<std::int32_t>(i));
    const bool protected_kind = node.kind == NodeKind::kInput || node.kind == NodeKind::kOutput;
    pruned[i] = !protected_kind && should_prune(node);
  }

  // For each pruned node, its "effective predecessors" are the surviving
  // ancestors seen through chains of pruned nodes. Processing in topological
  // order lets each pruned node reuse its pruned predecessors' results.
  std::vector<std::vector<std::int32_t>> effective_preds(n);
  PruneResult result;
  result.remap.assign(n, -1);
  for (const std::int32_t u : *order) {
    const auto ui = static_cast<std::size_t>(u);
    if (!pruned[ui]) {
      result.remap[ui] = result.dag.AddNode(dag.Node(u));
      continue;
    }
    ++result.removed;
    for (const std::int32_t p : dag.Predecessors(u)) {
      const auto pi = static_cast<std::size_t>(p);
      if (pruned[pi]) {
        for (const std::int32_t g : effective_preds[pi]) effective_preds[ui].push_back(g);
      } else {
        effective_preds[ui].push_back(p);
      }
    }
  }
  for (const std::int32_t v : *order) {
    const auto vi = static_cast<std::size_t>(v);
    if (pruned[vi]) continue;
    for (const std::int32_t p : dag.Predecessors(v)) {
      const auto pi = static_cast<std::size_t>(p);
      if (pruned[pi]) {
        for (const std::int32_t g : effective_preds[pi]) {
          result.dag.AddEdge(result.remap[static_cast<std::size_t>(g)], result.remap[vi]);
        }
      } else {
        result.dag.AddEdge(result.remap[pi], result.remap[vi]);
      }
    }
  }
  return result;
}

}  // namespace predtop::graph

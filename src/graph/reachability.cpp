#include "graph/reachability.h"

#include <bit>
#include <limits>
#include <stdexcept>

namespace predtop::graph {

ReachabilityClosure::ReachabilityClosure(const OpDag& dag) {
  n_ = dag.NumNodes();
  words_ = static_cast<std::size_t>((n_ + 63) / 64);
  rows_.assign(static_cast<std::size_t>(n_) * words_, 0ULL);
  const auto order = dag.TopologicalOrder();
  if (!order) throw std::invalid_argument("ReachabilityClosure: graph has a cycle");
  // Reverse topological order: each node's row = self-bit | OR of successors.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const std::int32_t u = *it;
    std::uint64_t* row = rows_.data() + static_cast<std::size_t>(u) * words_;
    row[static_cast<std::size_t>(u) / 64] |= 1ULL << (static_cast<std::size_t>(u) % 64);
    for (const std::int32_t v : dag.Successors(u)) {
      const std::uint64_t* vrow = rows_.data() + static_cast<std::size_t>(v) * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= vrow[w];
    }
  }
}

std::int64_t ReachabilityClosure::CountReachablePairs() const noexcept {
  std::int64_t count = 0;
  for (const std::uint64_t w : rows_) count += std::popcount(w);
  return count;
}

tensor::Tensor BuildDagraMask(const OpDag& dag) {
  const ReachabilityClosure closure(dag);
  const std::int64_t n = dag.NumNodes();
  tensor::Tensor mask({n, n});
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  for (std::int32_t u = 0; u < n; ++u) {
    for (std::int32_t v = 0; v < n; ++v) {
      const bool allowed = closure.Reaches(u, v) || closure.Reaches(v, u);
      mask.at(u, v) = allowed ? 0.0f : kNegInf;
    }
  }
  return mask;
}

tensor::Tensor BuildFullAttentionMask(std::int64_t num_nodes) {
  return tensor::Tensor({num_nodes, num_nodes});
}

}  // namespace predtop::graph

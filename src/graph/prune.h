#pragma once
// Graph pruning (paper §IV-B4): shape-only operators such as reshape and
// convert_element_type carry no compute signal — their effect (dtype /
// shape change) is already recorded on neighboring nodes' output specs — so
// they are removed and their predecessors wired directly to their
// successors, keeping graphs small enough to train on efficiently.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/op_dag.h"

namespace predtop::graph {

struct PruneResult {
  OpDag dag;
  /// old node index -> new index, or -1 if the node was pruned.
  std::vector<std::int32_t> remap;
  std::int64_t removed = 0;
};

/// Remove every node for which `should_prune` returns true, connecting each
/// removed node's predecessors to its successors (transitive wiring handles
/// chains of removable nodes). Input/output-kind nodes are never pruned.
[[nodiscard]] PruneResult PruneDag(const OpDag& dag,
                                   const std::function<bool(const DagNode&)>& should_prune);

}  // namespace predtop::graph

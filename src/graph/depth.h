#pragma once
// DAG positional encodings (DAGPE, paper §IV-A): node depth — the longest
// directed path from any source — serves as the transformer position, turned
// into a sinusoidal embedding added to the input projection.

#include <cstdint>
#include <vector>

#include "graph/op_dag.h"
#include "tensor/tensor.h"

namespace predtop::graph {

/// Longest-path depth per node; sources have depth 0. Throws on cycles.
[[nodiscard]] std::vector<std::int32_t> NodeDepths(const OpDag& dag);

/// Standard sinusoidal encoding of integer positions into `dim` features
/// (Vaswani et al. '17): PE(p, 2i) = sin(p / 10000^{2i/dim}), PE(p, 2i+1) =
/// cos(...). Returns (positions.size(), dim).
[[nodiscard]] tensor::Tensor SinusoidalEncoding(const std::vector<std::int32_t>& positions,
                                                std::int64_t dim);

}  // namespace predtop::graph

#pragma once
// Turns an OpDag into the numeric inputs consumed by the predictor models:
//  - node feature matrix per paper Tbl. I (op-type one-hot, log-scaled
//    output dims, dtype one-hot, node-kind one-hot),
//  - DAGRA reachability mask and DAGPE depths for the DAG Transformer,
//  - symmetrically normalized adjacency (CSR, with transpose) for GCN,
//  - bidirectional edge list with self-loops for GAT.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/op_dag.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace predtop::graph {

/// Node feature matrix (n, num_op_types + kMaxFeatureDims + num_dtypes +
/// kNumNodeKinds). Tensor dimensions enter as log2(1 + d) (paper §IV-B3:
/// logarithmic scaling keeps large dims from dominating).
[[nodiscard]] tensor::Tensor EncodeNodeFeatures(const OpDag& dag, std::int32_t num_op_types,
                                                std::int32_t num_dtypes);

/// Feature width produced by EncodeNodeFeatures for given vocabularies.
[[nodiscard]] constexpr std::int64_t NodeFeatureWidth(std::int32_t num_op_types,
                                                      std::int32_t num_dtypes) noexcept {
  return static_cast<std::int64_t>(num_op_types) + static_cast<std::int64_t>(kMaxFeatureDims) +
         num_dtypes + kNumNodeKinds;
}

struct EncodedGraph {
  std::int64_t num_nodes = 0;
  tensor::Tensor features;    // (n, F)
  tensor::Tensor dagra_mask;  // (n, n) additive, 0 / -inf
  std::vector<std::int32_t> depths;
  std::shared_ptr<const tensor::Csr> adj_norm;    // Â (GCN)
  std::shared_ptr<const tensor::Csr> adj_norm_t;  // Â^T
  std::vector<std::int32_t> edge_src;  // GAT message edges (bidirectional +
  std::vector<std::int32_t> edge_dst;  // self-loops)
  /// Cached EncodedGraphFingerprint, filled by EncodeGraph; 0 means "not
  /// computed" (callers assembling EncodedGraphs by hand can leave it unset
  /// and the fingerprint is derived on demand).
  std::uint64_t fingerprint = 0;
};

/// Build all model inputs from a (pruned) DAG in one pass.
[[nodiscard]] EncodedGraph EncodeGraph(const OpDag& dag, std::int32_t num_op_types,
                                       std::int32_t num_dtypes);

}  // namespace predtop::graph

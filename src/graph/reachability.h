#pragma once
// DAG reachability-based attention (DAGRA, paper §IV-A): a node attends to
// another iff a directed path connects them (in either direction) or they
// are the same node. The closure is computed with bitset rows in topological
// order, O(V·E/64).

#include <cstdint>
#include <vector>

#include "graph/op_dag.h"
#include "tensor/tensor.h"

namespace predtop::graph {

/// Row-major bitset: bit v of row u set iff u reaches v via >= 0 edges
/// (every node reaches itself).
class ReachabilityClosure {
 public:
  explicit ReachabilityClosure(const OpDag& dag);

  [[nodiscard]] bool Reaches(std::int32_t u, std::int32_t v) const noexcept {
    const std::size_t bit = static_cast<std::size_t>(v);
    return (rows_[static_cast<std::size_t>(u) * words_ + bit / 64] >> (bit % 64)) & 1ULL;
  }
  [[nodiscard]] std::int64_t NumNodes() const noexcept { return n_; }

  /// Number of ordered reachable pairs, including self-pairs.
  [[nodiscard]] std::int64_t CountReachablePairs() const noexcept;

 private:
  std::int64_t n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> rows_;
};

/// Additive attention mask (n, n): 0 where u and v are mutually relevant
/// (path between them in either direction, or u == v), -inf otherwise
/// (paper Eqn. 1 with the neighborhood range k = infinity).
[[nodiscard]] tensor::Tensor BuildDagraMask(const OpDag& dag);

/// Ablation helper: an all-zero mask of matching shape (full attention).
[[nodiscard]] tensor::Tensor BuildFullAttentionMask(std::int64_t num_nodes);

}  // namespace predtop::graph

#include "graph/op_dag.h"

#include <algorithm>
#include <stdexcept>

namespace predtop::graph {

std::int32_t OpDag::AddNode(DagNode node) {
  nodes_.push_back(node);
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void OpDag::AddEdge(std::int32_t u, std::int32_t v) {
  const auto n = static_cast<std::int32_t>(nodes_.size());
  if (u < 0 || v < 0 || u >= n || v >= n) throw std::out_of_range("OpDag::AddEdge: bad index");
  if (u == v) throw std::invalid_argument("OpDag::AddEdge: self-loop not allowed in a DAG");
  auto& out = succ_[static_cast<std::size_t>(u)];
  if (std::find(out.begin(), out.end(), v) != out.end()) return;
  out.push_back(v);
  pred_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
}

std::optional<std::vector<std::int32_t>> OpDag::TopologicalOrder() const {
  const auto n = static_cast<std::size_t>(nodes_.size());
  std::vector<std::int32_t> indegree(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    indegree[v] = static_cast<std::int32_t>(pred_[v].size());
  }
  std::vector<std::int32_t> queue;
  queue.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) queue.push_back(static_cast<std::int32_t>(v));
  }
  std::vector<std::int32_t> order;
  order.reserve(n);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::int32_t u = queue[head];
    order.push_back(u);
    for (const std::int32_t v : succ_[static_cast<std::size_t>(u)]) {
      if (--indegree[static_cast<std::size_t>(v)] == 0) queue.push_back(v);
    }
  }
  if (order.size() != n) return std::nullopt;  // cycle
  return order;
}

std::vector<std::pair<std::int32_t, std::int32_t>> OpDag::Edges() const {
  std::vector<std::pair<std::int32_t, std::int32_t>> out;
  out.reserve(static_cast<std::size_t>(num_edges_));
  for (std::size_t u = 0; u < succ_.size(); ++u) {
    for (const std::int32_t v : succ_[u]) out.emplace_back(static_cast<std::int32_t>(u), v);
  }
  return out;
}

}  // namespace predtop::graph

#pragma once
// GraphViz DOT export for operator DAGs — render a stage's structure (and
// the effect of pruning) with `dot -Tsvg`.

#include <functional>
#include <string>

#include "graph/op_dag.h"

namespace predtop::graph {

/// DOT digraph with one node per DAG node. `label_fn` customizes node
/// labels; the default shows op-type code, dtype and dims.
[[nodiscard]] std::string ToDot(
    const OpDag& dag, const std::string& graph_name = "stage",
    const std::function<std::string(std::int32_t, const DagNode&)>& label_fn = {});

}  // namespace predtop::graph

#include "graph/dot.h"

#include <sstream>

namespace predtop::graph {

namespace {

const char* KindShape(NodeKind kind) {
  switch (kind) {
    case NodeKind::kInput: return "invhouse";
    case NodeKind::kLiteral: return "box";
    case NodeKind::kOperator: return "ellipse";
    case NodeKind::kOutput: return "house";
  }
  return "ellipse";
}

std::string DefaultLabel(std::int32_t index, const DagNode& node) {
  std::ostringstream os;
  os << '#' << index << " op" << node.op_type << " dt" << node.dtype << " [";
  for (std::size_t i = 0; i < node.out_dims.size(); ++i) {
    if (i) os << 'x';
    os << node.out_dims[i];
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string ToDot(const OpDag& dag, const std::string& graph_name,
                  const std::function<std::string(std::int32_t, const DagNode&)>& label_fn) {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n  rankdir=TB;\n";
  for (std::int32_t i = 0; i < dag.NumNodes(); ++i) {
    const DagNode& node = dag.Node(i);
    const std::string label = label_fn ? label_fn(i, node) : DefaultLabel(i, node);
    os << "  n" << i << " [label=\"" << label << "\", shape=" << KindShape(node.kind)
       << "];\n";
  }
  for (const auto& [u, v] : dag.Edges()) {
    os << "  n" << u << " -> n" << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace predtop::graph

#pragma once
// Directed acyclic graph of tensor-level operations — the input artifact of
// the black-box stage-latency predictors (paper §IV-B2). Node payloads carry
// exactly the features of paper Tbl. I: operator type, output tensor
// dimensions, output data type, and node kind (input / literal / operator /
// output). Op-type and dtype are stored as small integer codes so the graph
// module stays independent of the IR that produces it.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace predtop::graph {

/// Paper Tbl. I "Node Type".
enum class NodeKind : std::uint8_t { kInput = 0, kLiteral = 1, kOperator = 2, kOutput = 3 };
inline constexpr int kNumNodeKinds = 4;

/// Output tensor dimensions padded/truncated to a fixed feature width.
inline constexpr std::size_t kMaxFeatureDims = 4;

struct DagNode {
  NodeKind kind = NodeKind::kOperator;
  std::int32_t op_type = 0;  // vocabulary index (see ir::OpType)
  std::int32_t dtype = 0;    // vocabulary index (see ir::DType)
  std::array<std::int64_t, kMaxFeatureDims> out_dims{1, 1, 1, 1};
};

class OpDag {
 public:
  /// Returns the new node's index.
  std::int32_t AddNode(DagNode node);

  /// Add edge u -> v. Requires valid, distinct indices; duplicate edges are
  /// ignored. No cycle check here — validate with IsAcyclic().
  void AddEdge(std::int32_t u, std::int32_t v);

  [[nodiscard]] std::int64_t NumNodes() const noexcept {
    return static_cast<std::int64_t>(nodes_.size());
  }
  [[nodiscard]] std::int64_t NumEdges() const noexcept { return num_edges_; }

  [[nodiscard]] const DagNode& Node(std::int32_t i) const { return nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] DagNode& Node(std::int32_t i) { return nodes_[static_cast<std::size_t>(i)]; }

  [[nodiscard]] const std::vector<std::int32_t>& Successors(std::int32_t i) const {
    return succ_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<std::int32_t>& Predecessors(std::int32_t i) const {
    return pred_[static_cast<std::size_t>(i)];
  }

  /// Topological order (Kahn); empty optional if the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<std::int32_t>> TopologicalOrder() const;
  [[nodiscard]] bool IsAcyclic() const { return TopologicalOrder().has_value(); }

  /// All (u, v) edges, u -> v.
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::int32_t>> Edges() const;

 private:
  std::vector<DagNode> nodes_;
  std::vector<std::vector<std::int32_t>> succ_;
  std::vector<std::vector<std::int32_t>> pred_;
  std::int64_t num_edges_ = 0;
};

}  // namespace predtop::graph

#pragma once
// Canonical 64-bit fingerprints of stage DAGs — the cache key of the
// prediction service. Identical stages reached from different plan-search
// branches (or different processes) must hash equally, so the hash is
// *order-independent*: it depends only on the multiset of node payloads and
// the edge structure between them, not on node insertion order. Two rounds
// of Weisfeiler-Leman-style neighborhood refinement (separate predecessor /
// successor sums, so edge direction matters) distinguish graphs whose raw
// node multisets coincide but whose wiring differs.
//
// This is a hash, not a canonical form: distinct graphs can collide with
// probability ~2^-64 per pair — fine for a latency cache, where a collision
// costs a slightly wrong latency estimate, not a correctness violation.

#include <cstdint>

#include "graph/encode.h"
#include "graph/op_dag.h"

namespace predtop::graph {

/// Fingerprint of a (pruned) operator DAG from its semantic node payloads
/// (kind, op type, dtype, output dims) and edges.
[[nodiscard]] std::uint64_t DagFingerprint(const OpDag& dag);

/// Fingerprint of an encoded predictor input: node feature rows + depths +
/// the (directed) GAT edge list. Equal EncodeGraph outputs fingerprint
/// equally regardless of how the caller obtained them.
[[nodiscard]] std::uint64_t EncodedGraphFingerprint(const EncodedGraph& g);

}  // namespace predtop::graph

#include "graph/fingerprint.h"

#include <bit>
#include <cstring>
#include <vector>

namespace predtop::graph {

namespace {

/// splitmix64 finalizer — full avalanche, so commutative sums of mixed
/// values still separate inputs well.
constexpr std::uint64_t Mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t Combine(std::uint64_t h, std::uint64_t v) noexcept {
  return Mix(h ^ Mix(v));
}

std::uint64_t FloatBits(float f) noexcept {
  // +0.0f and -0.0f compare equal but differ in bits; canonicalize so equal
  // feature matrices always fingerprint equally.
  if (f == 0.0f) f = 0.0f;
  return std::bit_cast<std::uint32_t>(f);
}

/// One WL refinement round: each node's hash absorbs the (commutative) sums
/// of its in- and out-neighbor hashes, kept separate so direction matters.
void RefineRound(std::vector<std::uint64_t>& node_hash,
                 const std::vector<std::vector<std::int32_t>>& preds,
                 const std::vector<std::vector<std::int32_t>>& succs) {
  std::vector<std::uint64_t> next(node_hash.size());
  for (std::size_t i = 0; i < node_hash.size(); ++i) {
    std::uint64_t in_sum = 0;
    std::uint64_t out_sum = 0;
    for (const std::int32_t p : preds[i]) in_sum += Mix(node_hash[static_cast<std::size_t>(p)]);
    for (const std::int32_t s : succs[i]) out_sum += Mix(node_hash[static_cast<std::size_t>(s)]);
    next[i] = Combine(Combine(node_hash[i], in_sum), Mix(out_sum) ^ 0x5bd1e995ULL);
  }
  node_hash.swap(next);
}

std::uint64_t FinishFingerprint(std::vector<std::uint64_t> node_hash,
                                const std::vector<std::vector<std::int32_t>>& preds,
                                const std::vector<std::vector<std::int32_t>>& succs,
                                std::uint64_t num_edges) {
  RefineRound(node_hash, preds, succs);
  RefineRound(node_hash, preds, succs);
  // Commutative reduction over nodes and over refined edge endpoint pairs.
  std::uint64_t node_sum = 0;
  for (const std::uint64_t h : node_hash) node_sum += Mix(h);
  std::uint64_t edge_sum = 0;
  for (std::size_t v = 0; v < succs.size(); ++v) {
    for (const std::int32_t u : preds[v]) {
      edge_sum += Mix(node_hash[static_cast<std::size_t>(u)] ^
                      std::rotl(node_hash[v], 17));
    }
  }
  std::uint64_t fp = Combine(0x70726564746f70ULL, static_cast<std::uint64_t>(node_hash.size()));
  fp = Combine(fp, num_edges);
  fp = Combine(fp, node_sum);
  fp = Combine(fp, edge_sum);
  return fp;
}

}  // namespace

std::uint64_t DagFingerprint(const OpDag& dag) {
  const auto n = static_cast<std::size_t>(dag.NumNodes());
  std::vector<std::uint64_t> node_hash(n);
  std::vector<std::vector<std::int32_t>> preds(n);
  std::vector<std::vector<std::int32_t>> succs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DagNode& node = dag.Node(static_cast<std::int32_t>(i));
    std::uint64_t h = Combine(0x6461676eULL, static_cast<std::uint64_t>(node.kind));
    h = Combine(h, static_cast<std::uint64_t>(node.op_type));
    h = Combine(h, static_cast<std::uint64_t>(node.dtype));
    for (const std::int64_t d : node.out_dims) h = Combine(h, static_cast<std::uint64_t>(d));
    node_hash[i] = h;
    preds[i] = dag.Predecessors(static_cast<std::int32_t>(i));
    succs[i] = dag.Successors(static_cast<std::int32_t>(i));
  }
  return FinishFingerprint(std::move(node_hash), preds, succs,
                           static_cast<std::uint64_t>(dag.NumEdges()));
}

std::uint64_t EncodedGraphFingerprint(const EncodedGraph& g) {
  // EncodeGraph caches the fingerprint at construction; recompute only for
  // hand-assembled graphs. (0 marks "unset" — a genuine zero hash would just
  // be recomputed, costing time, not correctness.)
  if (g.fingerprint != 0) return g.fingerprint;
  const auto n = static_cast<std::size_t>(g.num_nodes);
  std::vector<std::uint64_t> node_hash(n);
  const std::int64_t width = n > 0 ? g.features.dim(1) : 0;
  const auto features = g.features.data();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t h = Combine(0x656e63ULL,
                              i < g.depths.size()
                                  ? static_cast<std::uint64_t>(g.depths[i])
                                  : 0ULL);
    for (std::int64_t c = 0; c < width; ++c) {
      h = Combine(h, FloatBits(features[static_cast<std::size_t>(
                       static_cast<std::int64_t>(i) * width + c)]));
    }
    node_hash[i] = h;
  }
  // The GAT edge list (bidirectional + self-loops) is a deterministic
  // function of the DAG's edges, so it carries the full structure.
  std::vector<std::vector<std::int32_t>> preds(n);
  std::vector<std::vector<std::int32_t>> succs(n);
  for (std::size_t e = 0; e < g.edge_src.size(); ++e) {
    const std::int32_t u = g.edge_src[e];
    const std::int32_t v = g.edge_dst[e];
    succs[static_cast<std::size_t>(u)].push_back(v);
    preds[static_cast<std::size_t>(v)].push_back(u);
  }
  return FinishFingerprint(std::move(node_hash), preds, succs,
                           static_cast<std::uint64_t>(g.edge_src.size()));
}

}  // namespace predtop::graph

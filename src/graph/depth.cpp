#include "graph/depth.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace predtop::graph {

std::vector<std::int32_t> NodeDepths(const OpDag& dag) {
  const auto order = dag.TopologicalOrder();
  if (!order) throw std::invalid_argument("NodeDepths: graph has a cycle");
  std::vector<std::int32_t> depth(static_cast<std::size_t>(dag.NumNodes()), 0);
  for (const std::int32_t u : *order) {
    for (const std::int32_t v : dag.Successors(u)) {
      depth[static_cast<std::size_t>(v)] =
          std::max(depth[static_cast<std::size_t>(v)], depth[static_cast<std::size_t>(u)] + 1);
    }
  }
  return depth;
}

tensor::Tensor SinusoidalEncoding(const std::vector<std::int32_t>& positions, std::int64_t dim) {
  if (dim <= 0 || dim % 2 != 0) {
    throw std::invalid_argument("SinusoidalEncoding: dim must be positive and even");
  }
  const auto n = static_cast<std::int64_t>(positions.size());
  tensor::Tensor pe({n, dim});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto p = static_cast<double>(positions[static_cast<std::size_t>(i)]);
    for (std::int64_t k = 0; k < dim / 2; ++k) {
      const double freq = std::pow(10000.0, -2.0 * static_cast<double>(k) / static_cast<double>(dim));
      pe.at(i, 2 * k) = static_cast<float>(std::sin(p * freq));
      pe.at(i, 2 * k + 1) = static_cast<float>(std::cos(p * freq));
    }
  }
  return pe;
}

}  // namespace predtop::graph

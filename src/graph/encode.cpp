#include "graph/encode.h"

#include <cmath>
#include <stdexcept>

#include "graph/depth.h"
#include "graph/fingerprint.h"
#include "graph/reachability.h"

namespace predtop::graph {

tensor::Tensor EncodeNodeFeatures(const OpDag& dag, std::int32_t num_op_types,
                                  std::int32_t num_dtypes) {
  const std::int64_t n = dag.NumNodes();
  const std::int64_t width = NodeFeatureWidth(num_op_types, num_dtypes);
  tensor::Tensor features({n, width});
  for (std::int32_t i = 0; i < n; ++i) {
    const DagNode& node = dag.Node(i);
    if (node.op_type < 0 || node.op_type >= num_op_types) {
      throw std::out_of_range("EncodeNodeFeatures: op_type outside vocabulary");
    }
    if (node.dtype < 0 || node.dtype >= num_dtypes) {
      throw std::out_of_range("EncodeNodeFeatures: dtype outside vocabulary");
    }
    std::int64_t col = 0;
    features.at(i, col + node.op_type) = 1.0f;
    col += num_op_types;
    for (std::size_t d = 0; d < kMaxFeatureDims; ++d) {
      features.at(i, col + static_cast<std::int64_t>(d)) =
          std::log2(1.0f + static_cast<float>(node.out_dims[d]));
    }
    col += static_cast<std::int64_t>(kMaxFeatureDims);
    features.at(i, col + node.dtype) = 1.0f;
    col += num_dtypes;
    features.at(i, col + static_cast<std::int32_t>(node.kind)) = 1.0f;
  }
  return features;
}

EncodedGraph EncodeGraph(const OpDag& dag, std::int32_t num_op_types, std::int32_t num_dtypes) {
  EncodedGraph out;
  out.num_nodes = dag.NumNodes();
  out.features = EncodeNodeFeatures(dag, num_op_types, num_dtypes);
  out.dagra_mask = BuildDagraMask(dag);
  out.depths = NodeDepths(dag);

  // GCN: Â = D^{-1/2} (A_undirected + I) D^{-1/2}.
  const auto n = out.num_nodes;
  std::vector<std::int32_t> rows, cols;
  std::vector<float> ones;
  std::vector<std::int32_t> degree(static_cast<std::size_t>(n), 1);  // self-loop
  for (const auto& [u, v] : dag.Edges()) {
    rows.push_back(u);
    cols.push_back(v);
    rows.push_back(v);
    cols.push_back(u);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }
  for (std::int32_t i = 0; i < n; ++i) {
    rows.push_back(i);
    cols.push_back(i);
  }
  ones.reserve(rows.size());
  for (std::size_t e = 0; e < rows.size(); ++e) {
    const float du = static_cast<float>(degree[static_cast<std::size_t>(rows[e])]);
    const float dv = static_cast<float>(degree[static_cast<std::size_t>(cols[e])]);
    ones.push_back(1.0f / std::sqrt(du * dv));
  }
  auto adj = std::make_shared<tensor::Csr>(tensor::Csr::FromCoo(n, n, rows, cols, ones));
  // Â is symmetric by construction, but store an explicit transpose so the
  // autograd op never has to assume it.
  auto adj_t = std::make_shared<tensor::Csr>(adj->Transposed());
  out.adj_norm = std::move(adj);
  out.adj_norm_t = std::move(adj_t);

  // GAT: messages along both edge directions plus self-loops.
  out.edge_src.reserve(rows.size());
  out.edge_dst.reserve(rows.size());
  for (const auto& [u, v] : dag.Edges()) {
    out.edge_src.push_back(u);
    out.edge_dst.push_back(v);
    out.edge_src.push_back(v);
    out.edge_dst.push_back(u);
  }
  for (std::int32_t i = 0; i < n; ++i) {
    out.edge_src.push_back(i);
    out.edge_dst.push_back(i);
  }
  out.fingerprint = EncodedGraphFingerprint(out);
  return out;
}

}  // namespace predtop::graph

#pragma once
// Bump allocator for tape-free inference activations. A forward pass makes
// dozens of short-lived matrix allocations whose lifetimes all end together
// when the prediction is returned, which is exactly the arena pattern: grab
// memory by bumping a pointer, free everything at once with an epoch Reset()
// that keeps the capacity for the next forward. Each inference thread owns
// one arena (see nn::InferenceContext), so allocation is lock-free.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace predtop::tensor {

/// Non-owning view of a row-major float matrix, the currency of the
/// inference fast path (arena-backed activations, tensor views, cached
/// encodings all flow through the same kernels).
struct MatRef {
  float* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  [[nodiscard]] std::int64_t size() const noexcept { return rows * cols; }
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c) const noexcept {
    return data[r * cols + c];
  }
};

/// Read-only counterpart of MatRef.
struct ConstMat {
  const float* data = nullptr;
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  ConstMat() = default;
  ConstMat(const float* d, std::int64_t r, std::int64_t c) noexcept : data(d), rows(r), cols(c) {}
  ConstMat(const MatRef& m) noexcept : data(m.data), rows(m.rows), cols(m.cols) {}

  [[nodiscard]] std::int64_t size() const noexcept { return rows * cols; }
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const noexcept {
    return data[r * cols + c];
  }
};

class Arena {
 public:
  /// `initial_floats` sizes the first block; later blocks double as needed.
  explicit Arena(std::size_t initial_floats = 1u << 18);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `count` floats (rounded up so successive
  /// allocations stay 64-byte aligned). Valid until the next Reset().
  [[nodiscard]] float* AllocFloats(std::int64_t count);

  /// Uninitialized rows x cols matrix.
  [[nodiscard]] MatRef Alloc(std::int64_t rows, std::int64_t cols);
  /// Zero-filled rows x cols matrix (for kernels that accumulate).
  [[nodiscard]] MatRef AllocZeroed(std::int64_t rows, std::int64_t cols);

  /// Epoch reset: drop every allocation, keep the capacity. If the previous
  /// epoch spilled into overflow blocks, they are coalesced into one block
  /// sized for the whole epoch so steady state bumps through a single
  /// contiguous buffer.
  void Reset();

  /// Floats handed out since the last Reset().
  [[nodiscard]] std::size_t EpochFloats() const noexcept { return epoch_floats_; }
  /// Total floats reserved across all blocks.
  [[nodiscard]] std::size_t CapacityFloats() const noexcept;

 private:
  /// Storage over-allocates by one alignment unit so `base` (what the bump
  /// pointer walks) can start on a 64-byte boundary regardless of where
  /// operator new[] put the buffer.
  struct Block {
    std::unique_ptr<float[]> storage;
    float* base = nullptr;
    std::size_t capacity = 0;
  };
  [[nodiscard]] static Block MakeBlock(std::size_t capacity_floats);

  std::vector<Block> blocks_;
  std::size_t block_index_ = 0;  // block currently being bumped
  std::size_t used_ = 0;         // floats used in blocks_[block_index_]
  std::size_t epoch_floats_ = 0;
};

}  // namespace predtop::tensor

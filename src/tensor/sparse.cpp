#include "tensor/sparse.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace predtop::tensor {

Csr Csr::FromCoo(std::int64_t rows, std::int64_t cols,
                 const std::vector<std::int32_t>& r,
                 const std::vector<std::int32_t>& c,
                 const std::vector<float>& v) {
  if (r.size() != c.size() || r.size() != v.size()) {
    throw std::invalid_argument("Csr::FromCoo: triplet arrays must match in length");
  }
  // (row, col) -> summed value; std::map keeps entries sorted for CSR layout.
  std::map<std::pair<std::int32_t, std::int32_t>, float> entries;
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (r[i] < 0 || r[i] >= rows || c[i] < 0 || c[i] >= cols) {
      throw std::out_of_range("Csr::FromCoo: index out of range");
    }
    entries[{r[i], c[i]}] += v[i];
  }
  Csr out;
  out.rows = rows;
  out.cols = cols;
  out.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  out.col_idx.reserve(entries.size());
  out.values.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    ++out.row_ptr[static_cast<std::size_t>(key.first) + 1];
    out.col_idx.push_back(key.second);
    out.values.push_back(value);
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    out.row_ptr[static_cast<std::size_t>(i) + 1] += out.row_ptr[static_cast<std::size_t>(i)];
  }
  return out;
}

Csr Csr::Transposed() const {
  std::vector<std::int32_t> r, c;
  r.reserve(Nnz());
  c.reserve(Nnz());
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t p = row_ptr[static_cast<std::size_t>(i)];
         p < row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      r.push_back(col_idx[static_cast<std::size_t>(p)]);
      c.push_back(static_cast<std::int32_t>(i));
    }
  }
  return FromCoo(cols, rows, r, c, values);
}

Tensor SpMM(const Csr& a, const Tensor& x) {
  if (x.rank() != 2 || x.dim(0) != a.cols) {
    throw std::invalid_argument("SpMM: dense operand shape mismatch");
  }
  const std::int64_t n = x.dim(1);
  Tensor y({a.rows, n});
  const float* px = x.data().data();
  float* py = y.data().data();
  for (std::int64_t i = 0; i < a.rows; ++i) {
    float* yrow = py + i * n;
    for (std::int64_t p = a.row_ptr[static_cast<std::size_t>(i)];
         p < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const float av = a.values[static_cast<std::size_t>(p)];
      const float* xrow = px + static_cast<std::int64_t>(a.col_idx[static_cast<std::size_t>(p)]) * n;
      for (std::int64_t j = 0; j < n; ++j) yrow[j] += av * xrow[j];
    }
  }
  return y;
}

}  // namespace predtop::tensor

#include "tensor/arena.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace predtop::tensor {

namespace {

// Keep successive allocations 64-byte aligned (16 floats) so vector loads in
// the kernels never straddle cache lines mid-matrix.
constexpr std::size_t kAlignFloats = 16;

std::size_t RoundUp(std::size_t n) { return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats; }

}  // namespace

Arena::Block Arena::MakeBlock(std::size_t capacity_floats) {
  Block block;
  block.capacity = std::max(RoundUp(capacity_floats), kAlignFloats);
  block.storage = std::make_unique<float[]>(block.capacity + kAlignFloats);
  const auto addr = reinterpret_cast<std::uintptr_t>(block.storage.get());
  const std::size_t align_bytes = kAlignFloats * sizeof(float);
  const std::uintptr_t aligned = (addr + align_bytes - 1) / align_bytes * align_bytes;
  block.base = block.storage.get() + (aligned - addr) / sizeof(float);
  return block;
}

Arena::Arena(std::size_t initial_floats) { blocks_.push_back(MakeBlock(initial_floats)); }

float* Arena::AllocFloats(std::int64_t count) {
  if (count < 0) throw std::invalid_argument("Arena::AllocFloats: negative count");
  const std::size_t need = RoundUp(static_cast<std::size_t>(count));
  Block* block = &blocks_[block_index_];
  if (used_ + need > block->capacity) {
    // Move to (or create) an overflow block that fits the request; blocks
    // double so a growing workload settles after a few epochs.
    ++block_index_;
    if (block_index_ == blocks_.size()) {
      blocks_.push_back(MakeBlock(std::max(need, blocks_.back().capacity * 2)));
    } else if (blocks_[block_index_].capacity < need) {
      blocks_[block_index_] =
          MakeBlock(std::max(need, blocks_[block_index_].capacity * 2));
    }
    block = &blocks_[block_index_];
    used_ = 0;
  }
  float* out = block->base + used_;
  used_ += need;
  epoch_floats_ += need;
  return out;
}

MatRef Arena::Alloc(std::int64_t rows, std::int64_t cols) {
  return MatRef{AllocFloats(rows * cols), rows, cols};
}

MatRef Arena::AllocZeroed(std::int64_t rows, std::int64_t cols) {
  MatRef m = Alloc(rows, cols);
  std::memset(m.data, 0, static_cast<std::size_t>(m.size()) * sizeof(float));
  return m;
}

void Arena::Reset() {
  if (block_index_ > 0) {
    // The epoch spilled: replace the block list with one block big enough for
    // everything the epoch used, so the next epoch is a single bump stream.
    const std::size_t total = epoch_floats_;
    blocks_.clear();
    blocks_.push_back(MakeBlock(total));
  }
  block_index_ = 0;
  used_ = 0;
  epoch_floats_ = 0;
}

std::size_t Arena::CapacityFloats() const noexcept {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

}  // namespace predtop::tensor

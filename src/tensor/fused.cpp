#include "tensor/fused.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/simd.h"

namespace predtop::tensor::fused {

namespace {

constexpr float kNegInfCut = -1e30f;

}  // namespace

void BiasActRows(float* c, std::int64_t rows, std::int64_t cols, std::int64_t ldc,
                 const float* bias, Act act) noexcept {
  for (std::int64_t i = 0; i < rows; ++i) {
    float* row = c + i * ldc;
    if (bias != nullptr) {
      for (std::int64_t j = 0; j < cols; ++j) row[j] += bias[j];
    }
    switch (act) {
      case Act::kRelu:
        for (std::int64_t j = 0; j < cols; ++j) row[j] = row[j] > 0.0f ? row[j] : 0.0f;
        break;
      case Act::kGelu: {
        constexpr float kC = 0.7978845608f;  // sqrt(2/pi), as tensor::Gelu
        for (std::int64_t j = 0; j < cols; ++j) {
          const float x = row[j];
          const float inner = kC * (x + 0.044715f * x * x * x);
          row[j] = 0.5f * x * (1.0f + std::tanh(inner));
        }
        break;
      }
      case Act::kNone: break;
    }
  }
}

void LayerNormRow(const float* xrow, const float* gain, const float* bias, float* orow,
                  std::int64_t cols, float eps) noexcept {
  const float mean = simd::Sum(xrow, cols) / static_cast<float>(cols);
  const float var = simd::SumSquaredDiff(xrow, mean, cols) / static_cast<float>(cols);
  const float inv = 1.0f / std::sqrt(var + eps);
  for (std::int64_t j = 0; j < cols; ++j) {
    const float xh = (xrow[j] - mean) * inv;
    orow[j] = xh * gain[j] + bias[j];
  }
}

float MaskedSoftmaxRetryRow(const float* lrow, const float* mrow, float* orow,
                            std::int64_t n) noexcept {
  // The shift must come from lanes that survive the mask — adding a -inf mask
  // entry to an overflowed +inf logit is NaN, so the mask is *checked*, never
  // added, on this path.
  float mmax = -std::numeric_limits<float>::infinity();
  for (std::int64_t j = 0; j < n; ++j) {
    if (mrow != nullptr && mrow[j] < kNegInfCut) continue;
    mmax = std::max(mmax, lrow[j]);
  }
  if (mmax < kNegInfCut) {  // no open lane: all-zero weights, inv 0
    std::fill(orow, orow + n, 0.0f);
    return 0.0f;
  }
  float total = 0.0f;
  for (std::int64_t j = 0; j < n; ++j) {
    if (mrow != nullptr && mrow[j] < kNegInfCut) {
      orow[j] = 0.0f;
      continue;
    }
    const float v = lrow[j] - mmax;
    const float e = v < -100.0f ? 0.0f : simd::ExpNonPositive(v);
    orow[j] = e;
    total += e;
  }
  return total > 0.0f ? 1.0f / total : 0.0f;
}

void DeferredSoftmaxRowWindow(const float* lrow, const float* mrow, float* orow,
                              std::int64_t cols, std::int64_t lo, std::int64_t hi,
                              float* inv) noexcept {
  lo = std::clamp<std::int64_t>(lo, 0, cols);
  hi = std::clamp<std::int64_t>(hi, lo, cols);
  std::fill(orow, orow + lo, 0.0f);
  std::fill(orow + hi, orow + cols, 0.0f);
  if (hi <= lo) {
    *inv = 0.0f;
    return;
  }
  const std::int64_t w = hi - lo;
  const float maxv = simd::MaskedRowMax(lrow + lo, nullptr, w);
  const float total = simd::ExpShiftedNonPositiveSumN(
      lrow + lo, mrow != nullptr ? mrow + lo : nullptr, maxv, orow + lo, w);
  if (total > 0.0f) {
    *inv = 1.0f / total;
    return;
  }
  *inv = MaskedSoftmaxRetryRow(lrow + lo, mrow != nullptr ? mrow + lo : nullptr,
                               orow + lo, w);
}

void DeferredSoftmaxRowChunks(const float* lrow, float* orow, std::int64_t cols,
                              const std::int32_t* chunks, std::int64_t num_chunks,
                              float* inv) noexcept {
  if (num_chunks <= 0) {
    std::fill(orow, orow + cols, 0.0f);
    *inv = 0.0f;
    return;
  }
  const std::int64_t first = chunks[0];
  const std::int64_t last = chunks[2 * num_chunks - 1];
  std::fill(orow, orow + first, 0.0f);
  std::fill(orow + last, orow + cols, 0.0f);
  float maxv = -std::numeric_limits<float>::infinity();
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t lo = chunks[2 * c], hi = chunks[2 * c + 1];
    const float m = simd::MaskedRowMax(lrow + lo, nullptr, hi - lo);
    maxv = m > maxv ? m : maxv;
  }
  float total = 0.0f;
  std::int64_t prev = first;
  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t lo = chunks[2 * c], hi = chunks[2 * c + 1];
    std::fill(orow + prev, orow + lo, 0.0f);
    total += simd::ExpShiftedNonPositiveSumN(lrow + lo, nullptr, maxv, orow + lo, hi - lo);
    prev = hi;
  }
  *inv = total > 0.0f ? 1.0f / total : 0.0f;
}

}  // namespace predtop::tensor::fused

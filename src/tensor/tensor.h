#pragma once
// Dense row-major float tensor with value semantics.
//
// This is the numeric substrate for the from-scratch NN stack. Shapes in
// this project are small (node-feature matrices of a few hundred rows by
// <=256 columns), so a contiguous std::vector<float> buffer with explicit
// copies is simpler and fast enough; no views/strides are needed.

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace predtop::util {
class Rng;
}

namespace predtop::tensor {

using Shape = std::vector<std::int64_t>;

[[nodiscard]] std::int64_t NumElements(const Shape& shape) noexcept;
[[nodiscard]] std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  /// Empty (rank-0, zero elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  [[nodiscard]] static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  [[nodiscard]] static Tensor Full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// i.i.d. N(0, stddev^2) entries.
  [[nodiscard]] static Tensor Randn(Shape shape, util::Rng& rng, float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  [[nodiscard]] static Tensor RandUniform(Shape shape, util::Rng& rng, float lo, float hi);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::int64_t dim(std::size_t axis) const noexcept {
    assert(axis < shape_.size());
    return shape_[axis];
  }
  [[nodiscard]] std::int64_t numel() const noexcept { return static_cast<std::int64_t>(data_.size()); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] std::span<float> data() noexcept { return data_; }
  [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

  /// 2-D element access (row-major). Requires rank() == 2.
  [[nodiscard]] float& at(std::int64_t r, std::int64_t c) noexcept {
    assert(rank() == 2 && r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const noexcept {
    assert(rank() == 2 && r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<std::size_t>(r * shape_[1] + c)];
  }
  /// 1-D element access. Requires rank() == 1 (or any rank, flat index).
  [[nodiscard]] float& operator[](std::int64_t i) noexcept {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] float operator[](std::int64_t i) const noexcept {
    assert(i >= 0 && i < numel());
    return data_[static_cast<std::size_t>(i)];
  }

  /// Same data, new shape; element count must match.
  [[nodiscard]] Tensor Reshaped(Shape shape) const;

  void Fill(float v) noexcept;
  /// this += other (same shape).
  void AddInPlace(const Tensor& other);
  /// this *= s.
  void ScaleInPlace(float s) noexcept;

  [[nodiscard]] bool SameShape(const Tensor& other) const noexcept { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Max |a-b| over all elements; shapes must match. Used by tests.
[[nodiscard]] float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace predtop::tensor

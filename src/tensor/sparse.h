#pragma once
// Compressed-sparse-row matrix for graph adjacency operators (GCN's
// symmetrically normalized adjacency). Values are stored explicitly so the
// same structure serves normalized and unnormalized forms.

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace predtop::tensor {

struct Csr {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int64_t> row_ptr;  // size rows + 1
  std::vector<std::int32_t> col_idx;  // size nnz
  std::vector<float> values;          // size nnz

  [[nodiscard]] std::size_t Nnz() const noexcept { return col_idx.size(); }

  /// Build from COO triplets (duplicates are summed).
  [[nodiscard]] static Csr FromCoo(std::int64_t rows, std::int64_t cols,
                                   const std::vector<std::int32_t>& r,
                                   const std::vector<std::int32_t>& c,
                                   const std::vector<float>& v);

  [[nodiscard]] Csr Transposed() const;
};

/// Y = A * X for sparse A (rows,cols) and dense X (cols,n).
[[nodiscard]] Tensor SpMM(const Csr& a, const Tensor& x);

}  // namespace predtop::tensor

#pragma once
// Raw numeric kernels over Tensor. These are the forward/backward building
// blocks wrapped by predtop::autograd; they carry no gradient logic.
//
// Matrix kernels are written in i-k-j order over contiguous rows so the
// compiler auto-vectorizes them (AVX2/AVX-512 with -march=native), which is
// plenty for the <=512 x 256 shapes this project trains on.

#include "tensor/tensor.h"

namespace predtop::tensor {

/// C = A(m,k) * B(k,n).
[[nodiscard]] Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B where A is (k,m), B is (k,n) -> (m,n). (Gradient helper.)
[[nodiscard]] Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T where A is (m,k), B is (n,k) -> (m,n). (Gradient helper.)
[[nodiscard]] Tensor MatMulTransB(const Tensor& a, const Tensor& b);

[[nodiscard]] Tensor Add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Scale(const Tensor& a, float s);

/// rows(m,n) + bias(n), broadcast over rows.
[[nodiscard]] Tensor AddRowVector(const Tensor& m, const Tensor& bias);

/// Row-wise softmax of logits(m,n); `additive_mask`, if non-null, must have
/// the same shape and is added to the logits first (DAG reachability masks
/// use -inf entries). Rows that are fully -inf yield all-zero rows rather
/// than NaN.
[[nodiscard]] Tensor RowSoftmax(const Tensor& logits, const Tensor* additive_mask = nullptr);

[[nodiscard]] Tensor Relu(const Tensor& a);
[[nodiscard]] Tensor LeakyRelu(const Tensor& a, float negative_slope);
/// tanh-approximation GELU.
[[nodiscard]] Tensor Gelu(const Tensor& a);
[[nodiscard]] Tensor Tanh(const Tensor& a);

[[nodiscard]] Tensor Transpose2D(const Tensor& a);

/// (m,n) -> (n): sum over rows.
[[nodiscard]] Tensor SumRows(const Tensor& a);
/// (m,n) -> (m): sum over columns.
[[nodiscard]] Tensor SumCols(const Tensor& a);
/// Sum of all elements.
[[nodiscard]] float SumAll(const Tensor& a) noexcept;

}  // namespace predtop::tensor

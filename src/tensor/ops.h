#pragma once
// Raw numeric kernels over Tensor. These are the forward/backward building
// blocks wrapped by predtop::autograd; they carry no gradient logic.
//
// Matrix kernels come in three tiers:
//  - an i-k-j kernel over contiguous rows that the compiler auto-vectorizes
//    (AVX2/AVX-512 with -march=native) — the small-shape default;
//  - a register-blocked kernel over a B matrix packed into column panels
//    (PackB / MatMulPacked), which keeps a kGemmMr x kGemmPanel accumulator
//    tile in registers and streams packed panels — ~3-4x the i-k-j kernel at
//    256^3 and the backbone of the tape-free inference fast path (packed
//    weights are cached per nn::Linear);
//  - a ParallelFor-over-row-panels variant of the packed kernel on a shared
//    process-wide util::ThreadPool for large m (PREDTOP_GEMM_THREADS /
//    PREDTOP_GEMM_PAR_MIN_ELEMS knobs).
// MatMul / MatMulTransB dispatch between the tiers by shape (UsePackedGemm /
// UseThreadedGemm); results are deterministic across tiers and thread counts
// because each output element is always accumulated in ascending-k order by
// exactly one thread.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace predtop::tensor {

// ---- packed GEMM (register-blocked, B pre-packed into column panels) ----

/// Columns per packed panel (two 8-wide SIMD vectors, or one 16-wide).
inline constexpr std::int64_t kGemmPanel = 16;
/// Max rows per register tile of the packed micro-kernel. The wide (one
/// 16-float vector per panel) tile keeps 12 accumulators in registers on
/// AVX-512; the narrow two-8-wide tile processes 6 rows and mr > 6 dispatches
/// split row-wise. Either way each output element accumulates in ascending-k
/// order in its own lane, so tile shape never changes a single result bit.
inline constexpr std::int64_t kGemmMr = 12;
/// Minimum m for the packed tier (tier *selection* floor — kept at the
/// historical tile height so shapes keep dispatching to the same kernels).
inline constexpr std::int64_t kGemmRowFloor = 6;

/// Whether packed micro-kernels use the wide 12x16 single-vector tile
/// (default on when compiled with AVX-512 support) or the 6x16 two-vector
/// tile. Runtime-switchable so benchmarks can A/B the tiles; results are
/// bit-identical either way.
[[nodiscard]] bool GemmWideTiles() noexcept;
void SetGemmWideTiles(bool enabled) noexcept;

/// B(k, n) packed panel-major: panel p holds columns [p*kGemmPanel, ...) laid
/// out k-major (kGemmPanel contiguous floats per k step), the last panel
/// zero-padded to full width. Reusable across many multiplies — nn::Linear
/// caches one per weight matrix for the inference fast path.
struct PackedB {
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::vector<float> data;
};

/// Non-owning view of a packed B. The compiled inference executor keeps pack
/// storage inside its statically planned buffer, so the kernels below accept
/// views rather than requiring the std::vector-backed PackedB.
struct PackedBView {
  const float* data = nullptr;
  std::int64_t k = 0;
  std::int64_t n = 0;
};

[[nodiscard]] inline PackedBView ViewOf(const PackedB& b) noexcept {
  return {b.data.data(), b.k, b.n};
}

/// Floats of panel-major storage a (k, n) pack occupies (last panel padded).
[[nodiscard]] constexpr std::int64_t PackedBFloats(std::int64_t k, std::int64_t n) noexcept {
  return (n + kGemmPanel - 1) / kGemmPanel * k * kGemmPanel;
}

/// Pack row-major b (k, n); reuses `out.data` capacity across calls. `ldb` is
/// b's row stride (-1 means n, i.e. contiguous) so a column block of a wider
/// matrix packs without a slice copy.
void PackBInto(const float* b, std::int64_t k, std::int64_t n, PackedB& out,
               std::int64_t ldb = -1);
[[nodiscard]] PackedB PackB(const Tensor& b);
/// Pack B = bt^T from row-major bt (n, k) without materializing the transpose.
/// `ldb` is bt's row stride (-1 means k).
void PackBTransposedInto(const float* bt, std::int64_t k, std::int64_t n, PackedB& out,
                         std::int64_t ldb = -1);

/// PackBInto / PackBTransposedInto writing into caller-provided storage of
/// PackedBFloats(k, n) floats. Pad lanes of a ragged last panel are re-zeroed
/// on every call, so a reused plan-buffer region never leaks stale values.
void PackBIntoBuf(const float* b, std::int64_t k, std::int64_t n, float* out,
                  std::int64_t ldb = -1);
void PackBTransposedIntoBuf(const float* bt, std::int64_t k, std::int64_t n, float* out,
                            std::int64_t ldb = -1);

/// C(m, n) = A(m, k) * B with B pre-packed; `c` is fully overwritten (no
/// accumulate, no pre-zeroing needed). `allow_threads` additionally gates the
/// row-panel fan-out across the shared GEMM pool (see UseThreadedGemm).
void MatMulPackedInto(const float* a, std::int64_t m, const PackedB& b, float* c,
                      bool allow_threads = true);
/// Strided MatMulPackedInto: A has row stride `lda` (>= b.k) and C row stride
/// `ldc` (>= b.n), so attention can read a head's slice of a wider activation
/// and write its output at a column offset of the merged matrix in place.
void MatMulPackedStridedInto(const float* a, std::int64_t m, std::int64_t lda,
                             const PackedB& b, float* c, std::int64_t ldc,
                             bool allow_threads = true);
/// View-based MatMulPackedStridedInto (identical kernel and therefore
/// identical bits; the PackedB overload delegates here).
void MatMulPackedViewStridedInto(const float* a, std::int64_t m, std::int64_t lda,
                                 PackedBView b, float* c, std::int64_t ldc,
                                 bool allow_threads = true);
/// One register tile (`mr` <= kGemmMr rows starting at `a` / `c`) of
/// C = A * packed(B), restricted to the output columns whose panels intersect
/// [col_begin, col_end) and to the accumulation window [k_begin, k_end) of the
/// k dimension. The compiled attention kernel uses the windows to skip work
/// that a DAG reachability mask provably zeroes: skipped k lanes carry exact
/// zero weights, so windowed results equal the full multiply. Columns outside
/// the touched panels are left unwritten; an empty window writes nothing.
void PackedViewTile(const float* a, std::int64_t lda, PackedBView b, float* c,
                    std::int64_t ldc, int mr, std::int64_t col_begin, std::int64_t col_end,
                    std::int64_t k_begin, std::int64_t k_end);
[[nodiscard]] Tensor MatMulPacked(const Tensor& a, const PackedB& b,
                                  bool allow_threads = true);

/// Reference i-k-j kernel (the historical MatMul); kept callable for
/// benchmarking and as the small-shape dispatch target.
[[nodiscard]] Tensor MatMulNaive(const Tensor& a, const Tensor& b);

/// True when MatMul dispatches shape (m, k, n) to the packed kernel.
[[nodiscard]] bool UsePackedGemm(std::int64_t m, std::int64_t k, std::int64_t n) noexcept;
/// Process-wide switch for the packed tier (default from PREDTOP_GEMM_PACKED,
/// on unless set to 0). With it off, UsePackedGemm is always false and every
/// multiply runs the i-k-j kernel — an A/B lever so benchmarks can measure
/// against the pre-packed baseline in-process.
void SetPackedGemmEnabled(bool enabled) noexcept;
[[nodiscard]] bool PackedGemmEnabled() noexcept;
/// True when the packed kernel additionally spreads row panels across the
/// shared GEMM ThreadPool (m*k*n >= PREDTOP_GEMM_PAR_MIN_ELEMS, default 4Mi).
[[nodiscard]] bool UseThreadedGemm(std::int64_t m, std::int64_t k, std::int64_t n) noexcept;
/// The parallel-split threshold UseThreadedGemm compares m*k*n against.
/// Runtime-settable (initialized from PREDTOP_GEMM_PAR_MIN_ELEMS) so the
/// compile-layer autotuner can calibrate it to the machine at first use;
/// threading never changes result bits, only where the crossover sits.
[[nodiscard]] std::int64_t GemmParMinElems() noexcept;
void SetGemmParMinElems(std::int64_t min_elems) noexcept;
/// Worker count the shared GEMM pool runs with (PREDTOP_GEMM_THREADS or
/// hardware_concurrency); reading it never constructs the pool.
[[nodiscard]] std::size_t GemmThreads() noexcept;

/// C = A(m,k) * B(k,n). Dispatches between the kernel tiers; see above.
[[nodiscard]] Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B where A is (k,m), B is (k,n) -> (m,n). (Gradient helper.)
[[nodiscard]] Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T where A is (m,k), B is (n,k) -> (m,n). (Gradient helper.)
[[nodiscard]] Tensor MatMulTransB(const Tensor& a, const Tensor& b);

[[nodiscard]] Tensor Add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Mul(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor Scale(const Tensor& a, float s);

/// rows(m,n) + bias(n), broadcast over rows.
[[nodiscard]] Tensor AddRowVector(const Tensor& m, const Tensor& bias);

/// Row-wise softmax of logits(m,n); `additive_mask`, if non-null, must have
/// the same shape and is added to the logits first (DAG reachability masks
/// use -inf entries). Rows that are fully -inf yield all-zero rows rather
/// than NaN.
[[nodiscard]] Tensor RowSoftmax(const Tensor& logits, const Tensor* additive_mask = nullptr);

[[nodiscard]] Tensor Relu(const Tensor& a);
[[nodiscard]] Tensor LeakyRelu(const Tensor& a, float negative_slope);
/// tanh-approximation GELU.
[[nodiscard]] Tensor Gelu(const Tensor& a);
[[nodiscard]] Tensor Tanh(const Tensor& a);

[[nodiscard]] Tensor Transpose2D(const Tensor& a);

/// (m,n) -> (n): sum over rows.
[[nodiscard]] Tensor SumRows(const Tensor& a);
/// (m,n) -> (m): sum over columns.
[[nodiscard]] Tensor SumCols(const Tensor& a);
/// Sum of all elements.
[[nodiscard]] float SumAll(const Tensor& a) noexcept;

}  // namespace predtop::tensor

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "tensor/simd.h"

namespace predtop::tensor {

namespace {

void Require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

void Require2D(const Tensor& t, const char* msg) { Require(t.rank() == 2, msg); }

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Require2D(a, "MatMul: a must be 2-D");
  Require2D(b, "MatMul: b must be 2-D");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Require(b.dim(0) == k, "MatMul: inner dimension mismatch");
  Tensor c({m, n});
  const float* __restrict pa = a.data().data();
  const float* __restrict pb = b.data().data();
  float* __restrict pc = c.data().data();
  if (n < 16 && k >= 16) {
    // Narrow outputs (per-head attention context, dW slices): the i-k-j
    // kernel's inner loop is too short to vectorize, so transpose B once and
    // use explicit-SIMD dot products over the long k dimension instead.
    const Tensor bt = Transpose2D(b);
    const float* __restrict pbt = bt.data().data();
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] = simd::Dot(arow, pbt + j * k, k);
    }
    return c;
  }
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // masks/one-hots make zero rows common
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  Require2D(a, "MatMulTransA: a must be 2-D");
  Require2D(b, "MatMulTransA: b must be 2-D");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Require(b.dim(0) == k, "MatMulTransA: leading dimension mismatch");
  Tensor c({m, n});
  const float* __restrict pa = a.data().data();
  const float* __restrict pb = b.data().data();
  float* __restrict pc = c.data().data();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  Require2D(a, "MatMulTransB: a must be 2-D");
  Require2D(b, "MatMulTransB: b must be 2-D");
  Require(b.dim(1) == a.dim(1), "MatMulTransB: trailing dimension mismatch");
  // Materializing B^T keeps the multiply in the vectorizable i-k-j kernel —
  // a dot-product formulation is a float reduction the compiler will not
  // vectorize without fast-math. The transpose is O(k*n) vs O(m*k*n).
  return MatMul(a, Transpose2D(b));
}

namespace {

template <typename F>
Tensor ZipSameShape(const Tensor& a, const Tensor& b, const char* name, F&& f) {
  Require(a.SameShape(b), name);
  Tensor out(a.shape());
  const auto da = a.data();
  const auto db = b.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i], db[i]);
  return out;
}

template <typename F>
Tensor MapElems(const Tensor& a, F&& f) {
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, "Add: shape mismatch", [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, "Sub: shape mismatch", [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, "Mul: shape mismatch", [](float x, float y) { return x * y; });
}

Tensor Scale(const Tensor& a, float s) {
  return MapElems(a, [s](float x) { return x * s; });
}

Tensor AddRowVector(const Tensor& m, const Tensor& bias) {
  Require2D(m, "AddRowVector: m must be 2-D");
  Require(bias.rank() == 1 && bias.dim(0) == m.dim(1), "AddRowVector: bias shape mismatch");
  Tensor out(m.shape());
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  const float* __restrict pm = m.data().data();
  const float* __restrict pb = bias.data().data();
  float* __restrict po = out.data().data();
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) po[i * cols + j] = pm[i * cols + j] + pb[j];
  }
  return out;
}

Tensor RowSoftmax(const Tensor& logits, const Tensor* additive_mask) {
  Require2D(logits, "RowSoftmax: logits must be 2-D");
  if (additive_mask != nullptr) {
    Require(additive_mask->SameShape(logits), "RowSoftmax: mask shape mismatch");
  }
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  const float* pl = logits.data().data();
  const float* pm = additive_mask != nullptr ? additive_mask->data().data() : nullptr;
  float* po = out.data().data();
  constexpr float kNegInfCut = -1e30f;
  std::vector<float> shifted(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* lrow = pl + i * cols;
    const float* mrow = pm != nullptr ? pm + i * cols : nullptr;
    float* orow = po + i * cols;
    float maxv = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < cols; ++j) {
      const float v = lrow[j] + (mrow != nullptr ? mrow[j] : 0.0f);
      maxv = std::max(maxv, v);
    }
    if (maxv < kNegInfCut) {  // fully masked row
      std::fill(orow, orow + cols, 0.0f);
      continue;
    }
    for (std::int64_t j = 0; j < cols; ++j) {
      const float v = lrow[j] + (mrow != nullptr ? mrow[j] : 0.0f);
      shifted[static_cast<std::size_t>(j)] = v - maxv;  // -inf stays -inf
    }
    simd::ExpNonPositiveN(shifted.data(), orow, cols);
    const float inv = 1.0f / simd::Sum(orow, cols);
    for (std::int64_t j = 0; j < cols; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  return MapElems(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return MapElems(a, [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  return MapElems(a, [](float x) {
    const float inner = kC * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
  });
}

Tensor Tanh(const Tensor& a) {
  return MapElems(a, [](float x) { return std::tanh(x); });
}

Tensor Transpose2D(const Tensor& a) {
  Require2D(a, "Transpose2D: a must be 2-D");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  Require2D(a, "SumRows: a must be 2-D");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const float* pa = a.data().data();
  float* po = out.data().data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) po[j] += pa[i * n + j];
  }
  return out;
}

Tensor SumCols(const Tensor& a) {
  Require2D(a, "SumCols: a must be 2-D");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const float* pa = a.data().data();
  float* po = out.data().data();
  for (std::int64_t i = 0; i < m; ++i) {
    float acc = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) acc += pa[i * n + j];
    po[i] = acc;
  }
  return out;
}

float SumAll(const Tensor& a) noexcept {
  float s = 0.0f;
  for (float v : a.data()) s += v;
  return s;
}

}  // namespace predtop::tensor

#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <thread>
#include <vector>

#include "tensor/simd.h"
#include "util/env.h"
#include "util/thread_pool.h"

namespace predtop::tensor {

namespace {

void Require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

void Require2D(const Tensor& t, const char* msg) { Require(t.rank() == 2, msg); }

}  // namespace

Tensor MatMulNaive(const Tensor& a, const Tensor& b) {
  Require2D(a, "MatMul: a must be 2-D");
  Require2D(b, "MatMul: b must be 2-D");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Require(b.dim(0) == k, "MatMul: inner dimension mismatch");
  Tensor c({m, n});
  const float* __restrict pa = a.data().data();
  const float* __restrict pb = b.data().data();
  float* __restrict pc = c.data().data();
  if (n < 16 && k >= 16) {
    // Narrow outputs (per-head attention context, dW slices): the i-k-j
    // kernel's inner loop is too short to vectorize, so transpose B once and
    // use explicit-SIMD dot products over the long k dimension instead.
    const Tensor bt = Transpose2D(b);
    const float* __restrict pbt = bt.data().data();
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] = simd::Dot(arow, pbt + j * k, k);
    }
    return c;
  }
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // masks/one-hots make zero rows common
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

namespace {

// ---- packed GEMM: kGemmMr x kGemmPanel register-tiled micro-kernel ----
//
// The packed layout stores B panel-major (see ops.h), so the micro-kernel's
// inner loop is a pure stream: load two 8-wide vectors of B, broadcast one A
// scalar per row of the tile, and FMA into 2*MR vector accumulators that live
// in registers for the whole k loop. The tile is stored once at the end, so
// C needs no pre-zeroing and the kernel overwrites rather than accumulates.
// Each output element is accumulated in ascending-k order by exactly one
// thread, which keeps results bit-identical across dispatch tiers and thread
// counts (the threaded variant only partitions rows).

#ifdef PREDTOP_HAVE_VECTOR_EXT

template <int MR>
void MicroKernelPanel(const float* __restrict a, std::int64_t lda, const float* __restrict bp,
                      std::int64_t k, float* __restrict c, std::int64_t ldc) {
  simd::F8 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = simd::Broadcast(0.0f);
    acc1[r] = simd::Broadcast(0.0f);
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    simd::F8 b0, b1;
    std::memcpy(&b0, bp + kk * kGemmPanel, sizeof b0);
    std::memcpy(&b1, bp + kk * kGemmPanel + 8, sizeof b1);
    for (int r = 0; r < MR; ++r) {
      const simd::F8 av = simd::Broadcast(a[r * lda + kk]);
      acc0[r] += av * b0;
      acc1[r] += av * b1;
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + r * ldc, &acc0[r], sizeof(simd::F8));
    std::memcpy(c + r * ldc + 8, &acc1[r], sizeof(simd::F8));
  }
}

/// Wide tile: one 16-float vector per panel row, up to 12 accumulators. On
/// AVX-512 this halves the FMA instruction count per k step and fills the
/// FMA pipeline from a single B load; per output lane the accumulation
/// sequence is identical to the narrow tile, so results match it bit for bit.
template <int MR>
void MicroKernelPanelWide(const float* __restrict a, std::int64_t lda,
                          const float* __restrict bp, std::int64_t k,
                          float* __restrict c, std::int64_t ldc) {
  simd::F16 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = simd::Broadcast16(0.0f);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    simd::F16 b;
    std::memcpy(&b, bp + kk * kGemmPanel, sizeof b);
    for (int r = 0; r < MR; ++r) acc[r] += simd::Broadcast16(a[r * lda + kk]) * b;
  }
  for (int r = 0; r < MR; ++r) std::memcpy(c + r * ldc, &acc[r], sizeof(simd::F16));
}

#else  // scalar fallback for compilers without vector extensions

template <int MR>
void MicroKernelPanel(const float* __restrict a, std::int64_t lda, const float* __restrict bp,
                      std::int64_t k, float* __restrict c, std::int64_t ldc) {
  float acc[MR][kGemmPanel] = {};
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* brow = bp + kk * kGemmPanel;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int j = 0; j < kGemmPanel; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < MR; ++r) std::memcpy(c + r * ldc, acc[r], sizeof acc[r]);
}

template <int MR>
void MicroKernelPanelWide(const float* __restrict a, std::int64_t lda,
                          const float* __restrict bp, std::int64_t k,
                          float* __restrict c, std::int64_t ldc) {
  MicroKernelPanel<MR>(a, lda, bp, k, c, ldc);
}

#endif

std::atomic<bool>& WideTileFlag() noexcept {
  static std::atomic<bool> flag{
#if defined(__AVX512F__)
      true
#else
      false
#endif
  };
  return flag;
}

void DispatchNarrow(int mr, const float* a, std::int64_t lda, const float* bp,
                    std::int64_t k, float* c, std::int64_t ldc) {
  switch (mr) {
    case 6: MicroKernelPanel<6>(a, lda, bp, k, c, ldc); break;
    case 5: MicroKernelPanel<5>(a, lda, bp, k, c, ldc); break;
    case 4: MicroKernelPanel<4>(a, lda, bp, k, c, ldc); break;
    case 3: MicroKernelPanel<3>(a, lda, bp, k, c, ldc); break;
    case 2: MicroKernelPanel<2>(a, lda, bp, k, c, ldc); break;
    default: MicroKernelPanel<1>(a, lda, bp, k, c, ldc); break;
  }
}

void DispatchMicroKernel(int mr, const float* a, std::int64_t lda, const float* bp,
                         std::int64_t k, float* c, std::int64_t ldc) {
  if (WideTileFlag().load(std::memory_order_relaxed)) {
    switch (mr) {
      case 12: MicroKernelPanelWide<12>(a, lda, bp, k, c, ldc); break;
      case 11: MicroKernelPanelWide<11>(a, lda, bp, k, c, ldc); break;
      case 10: MicroKernelPanelWide<10>(a, lda, bp, k, c, ldc); break;
      case 9: MicroKernelPanelWide<9>(a, lda, bp, k, c, ldc); break;
      case 8: MicroKernelPanelWide<8>(a, lda, bp, k, c, ldc); break;
      case 7: MicroKernelPanelWide<7>(a, lda, bp, k, c, ldc); break;
      case 6: MicroKernelPanelWide<6>(a, lda, bp, k, c, ldc); break;
      case 5: MicroKernelPanelWide<5>(a, lda, bp, k, c, ldc); break;
      case 4: MicroKernelPanelWide<4>(a, lda, bp, k, c, ldc); break;
      case 3: MicroKernelPanelWide<3>(a, lda, bp, k, c, ldc); break;
      case 2: MicroKernelPanelWide<2>(a, lda, bp, k, c, ldc); break;
      default: MicroKernelPanelWide<1>(a, lda, bp, k, c, ldc); break;
    }
    return;
  }
  // Narrow tile handles at most 6 rows; larger tiles split row-wise, which
  // leaves every output element's accumulation order untouched.
  while (mr > 6) {
    DispatchNarrow(6, a, lda, bp, k, c, ldc);
    a += 6 * lda;
    c += 6 * ldc;
    mr -= 6;
  }
  DispatchNarrow(mr, a, lda, bp, k, c, ldc);
}

/// Rows [row_begin, row_end) of C = A * packed(B), with row strides lda/ldc
/// (the contiguous case passes b.k / b.n). row_begin must be a multiple of
/// kGemmMr (threaded chunks honor this) so tiles never straddle a partition
/// boundary.
void PackedRowRange(const float* __restrict a, std::int64_t lda, PackedBView b,
                    float* __restrict c, std::int64_t ldc, std::int64_t row_begin,
                    std::int64_t row_end) {
  const std::int64_t k = b.k, n = b.n;
  const std::int64_t num_panels = (n + kGemmPanel - 1) / kGemmPanel;
  const float* pb = b.data;
  for (std::int64_t i = row_begin; i < row_end; i += kGemmMr) {
    const int mr = static_cast<int>(std::min<std::int64_t>(kGemmMr, row_end - i));
    const float* ablock = a + i * lda;
    float* cblock = c + i * ldc;
    for (std::int64_t p = 0; p < num_panels; ++p) {
      const float* bp = pb + p * k * kGemmPanel;
      const std::int64_t j0 = p * kGemmPanel;
      const std::int64_t w = std::min<std::int64_t>(kGemmPanel, n - j0);
      if (w == kGemmPanel) {
        DispatchMicroKernel(mr, ablock, lda, bp, k, cblock + j0, ldc);
      } else {
        // Ragged last panel: compute the full zero-padded tile into scratch,
        // then copy only the live columns.
        float tmp[kGemmMr * kGemmPanel];
        DispatchMicroKernel(mr, ablock, lda, bp, k, tmp, kGemmPanel);
        for (int r = 0; r < mr; ++r) {
          std::memcpy(cblock + r * ldc + j0, tmp + r * kGemmPanel,
                      static_cast<std::size_t>(w) * sizeof(float));
        }
      }
    }
  }
}

/// Worker count the shared GEMM pool would be built with; reading it does not
/// construct the pool (UseThreadedGemm must stay cheap and noexcept).
std::size_t GemmThreadTarget() noexcept {
  static const std::size_t target = [] {
    const long env = util::EnvInt("PREDTOP_GEMM_THREADS", 0);
    if (env > 0) return static_cast<std::size_t>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return target;
}

std::atomic<std::int64_t>& GemmParMinElemsFlag() noexcept {
  static std::atomic<std::int64_t> v{
      util::EnvInt("PREDTOP_GEMM_PAR_MIN_ELEMS", 4l << 20)};  // 4Mi MACs
  return v;
}

/// Shared process-wide pool for threaded GEMMs, built on first threaded
/// multiply. Serving-size forwards stay below the threading threshold, so the
/// pool never competes with PredictMany's own fan-out for those.
util::ThreadPool& GemmPool() {
  static util::ThreadPool pool(GemmThreadTarget());
  return pool;
}

}  // namespace

void PackBIntoBuf(const float* b, std::int64_t k, std::int64_t n, float* out,
                  std::int64_t ldb) {
  if (ldb < 0) ldb = n;
  const std::int64_t num_panels = (n + kGemmPanel - 1) / kGemmPanel;
  for (std::int64_t p = 0; p < num_panels; ++p) {
    const std::int64_t j0 = p * kGemmPanel;
    const std::int64_t w = std::min<std::int64_t>(kGemmPanel, n - j0);
    float* panel = out + p * k * kGemmPanel;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      std::memcpy(panel + kk * kGemmPanel, b + kk * ldb + j0,
                  static_cast<std::size_t>(w) * sizeof(float));
      for (std::int64_t j = w; j < kGemmPanel; ++j) panel[kk * kGemmPanel + j] = 0.0f;
    }
  }
}

void PackBInto(const float* b, std::int64_t k, std::int64_t n, PackedB& out,
               std::int64_t ldb) {
  out.k = k;
  out.n = n;
  out.data.resize(static_cast<std::size_t>(PackedBFloats(k, n)));
  PackBIntoBuf(b, k, n, out.data.data(), ldb);
}

PackedB PackB(const Tensor& b) {
  Require2D(b, "PackB: b must be 2-D");
  PackedB out;
  PackBInto(b.data().data(), b.dim(0), b.dim(1), out);
  return out;
}

void PackBTransposedIntoBuf(const float* bt, std::int64_t k, std::int64_t n, float* out,
                            std::int64_t ldb) {
  if (ldb < 0) ldb = k;
  const std::int64_t num_panels = (n + kGemmPanel - 1) / kGemmPanel;
  for (std::int64_t p = 0; p < num_panels; ++p) {
    const std::int64_t j0 = p * kGemmPanel;
    const std::int64_t w = std::min<std::int64_t>(kGemmPanel, n - j0);
    float* panel = out + p * k * kGemmPanel;
    if (w < kGemmPanel) {
      std::memset(panel, 0, static_cast<std::size_t>(k * kGemmPanel) * sizeof(float));
    }
    for (std::int64_t j = 0; j < w; ++j) {
      const float* src = bt + (j0 + j) * ldb;  // column j0+j of B is row j0+j of B^T
      for (std::int64_t kk = 0; kk < k; ++kk) panel[kk * kGemmPanel + j] = src[kk];
    }
  }
}

void PackBTransposedInto(const float* bt, std::int64_t k, std::int64_t n, PackedB& out,
                         std::int64_t ldb) {
  out.k = k;
  out.n = n;
  out.data.resize(static_cast<std::size_t>(PackedBFloats(k, n)));
  PackBTransposedIntoBuf(bt, k, n, out.data.data(), ldb);
}

namespace {

std::atomic<bool>& PackedGemmFlag() noexcept {
  static std::atomic<bool> enabled{util::EnvInt("PREDTOP_GEMM_PACKED", 1) != 0};
  return enabled;
}

}  // namespace

void SetPackedGemmEnabled(bool enabled) noexcept {
  PackedGemmFlag().store(enabled, std::memory_order_relaxed);
}

bool GemmWideTiles() noexcept { return WideTileFlag().load(std::memory_order_relaxed); }

void SetGemmWideTiles(bool enabled) noexcept {
  WideTileFlag().store(enabled, std::memory_order_relaxed);
}

std::int64_t GemmParMinElems() noexcept {
  return GemmParMinElemsFlag().load(std::memory_order_relaxed);
}

void SetGemmParMinElems(std::int64_t min_elems) noexcept {
  GemmParMinElemsFlag().store(min_elems > 0 ? min_elems : 1, std::memory_order_relaxed);
}

std::size_t GemmThreads() noexcept { return GemmThreadTarget(); }

bool PackedGemmEnabled() noexcept {
  return PackedGemmFlag().load(std::memory_order_relaxed);
}

bool UsePackedGemm(std::int64_t m, std::int64_t k, std::int64_t n) noexcept {
  // Packing costs O(k*n); below ~256Ki multiply-accumulates the i-k-j kernel
  // wins. Narrow outputs stay on the simd::Dot path and short k gives the
  // micro-kernel nothing to stream. The floor is kGemmRowFloor, not kGemmMr:
  // tier selection must not move when the register tile height changes.
  if (n < kGemmPanel || k < 8 || m < kGemmRowFloor) return false;
  if (!PackedGemmEnabled()) return false;
  return m * k * n >= (std::int64_t{1} << 18);
}

bool UseThreadedGemm(std::int64_t m, std::int64_t k, std::int64_t n) noexcept {
  if (GemmThreadTarget() <= 1) return false;
  if (m < 4 * kGemmMr) return false;  // too few row tiles to split
  return m * k * n >= GemmParMinElems();
}

void MatMulPackedStridedInto(const float* a, std::int64_t m, std::int64_t lda,
                             const PackedB& b, float* c, std::int64_t ldc,
                             bool allow_threads) {
  MatMulPackedViewStridedInto(a, m, lda, ViewOf(b), c, ldc, allow_threads);
}

void MatMulPackedViewStridedInto(const float* a, std::int64_t m, std::int64_t lda,
                                 PackedBView b, float* c, std::int64_t ldc,
                                 bool allow_threads) {
  if (m <= 0 || b.n <= 0) return;
  if (allow_threads && UseThreadedGemm(m, b.k, b.n)) {
    util::ThreadPool& pool = GemmPool();
    // Chunk rows in multiples of kGemmMr, ~2 chunks per worker (the caller
    // participates in ParallelFor) for load balance without tiny tasks.
    const std::int64_t row_blocks = (m + kGemmMr - 1) / kGemmMr;
    const std::int64_t target_tasks = static_cast<std::int64_t>(2 * (pool.ThreadCount() + 1));
    const std::int64_t chunk =
        std::max<std::int64_t>(1, (row_blocks + target_tasks - 1) / target_tasks) * kGemmMr;
    const std::size_t tasks = static_cast<std::size_t>((m + chunk - 1) / chunk);
    if (tasks > 1) {
      pool.ParallelFor(tasks, [&](std::size_t t) {
        const std::int64_t r0 = static_cast<std::int64_t>(t) * chunk;
        PackedRowRange(a, lda, b, c, ldc, r0, std::min<std::int64_t>(m, r0 + chunk));
      });
      return;
    }
  }
  PackedRowRange(a, lda, b, c, ldc, 0, m);
}

void MatMulPackedInto(const float* a, std::int64_t m, const PackedB& b, float* c,
                      bool allow_threads) {
  MatMulPackedStridedInto(a, m, b.k, b, c, b.n, allow_threads);
}

void PackedViewTile(const float* a, std::int64_t lda, PackedBView b, float* c,
                    std::int64_t ldc, int mr, std::int64_t col_begin, std::int64_t col_end,
                    std::int64_t k_begin, std::int64_t k_end) {
  if (mr <= 0 || col_end <= col_begin || b.n <= 0) return;
  col_begin = std::max<std::int64_t>(0, col_begin);
  col_end = std::min(col_end, b.n);
  k_begin = std::max<std::int64_t>(0, k_begin);
  k_end = std::min(k_end, b.k);
  const std::int64_t kw = k_end - k_begin;
  const std::int64_t p_begin = col_begin / kGemmPanel;
  const std::int64_t p_end = (col_end + kGemmPanel - 1) / kGemmPanel;
  for (std::int64_t p = p_begin; p < p_end; ++p) {
    // Panels store kGemmPanel floats per k step, so the k window is a simple
    // offset into the panel stream; skipped k lanes never enter the
    // accumulator (their weights are exact zeros in the masked callers).
    const float* bp = b.data + p * b.k * kGemmPanel + k_begin * kGemmPanel;
    const std::int64_t j0 = p * kGemmPanel;
    const std::int64_t w = std::min<std::int64_t>(kGemmPanel, b.n - j0);
    if (kw <= 0) {
      // Empty accumulation window: the tile is exactly zero.
      for (int r = 0; r < mr; ++r) {
        for (std::int64_t j = 0; j < w; ++j) c[r * ldc + j0 + j] = 0.0f;
      }
      continue;
    }
    const float* ablock = a + k_begin;
    if (w == kGemmPanel) {
      DispatchMicroKernel(mr, ablock, lda, bp, kw, c + j0, ldc);
    } else {
      float tmp[kGemmMr * kGemmPanel];
      DispatchMicroKernel(mr, ablock, lda, bp, kw, tmp, kGemmPanel);
      for (int r = 0; r < mr; ++r) {
        std::memcpy(c + r * ldc + j0, tmp + r * kGemmPanel,
                    static_cast<std::size_t>(w) * sizeof(float));
      }
    }
  }
}

Tensor MatMulPacked(const Tensor& a, const PackedB& b, bool allow_threads) {
  Require2D(a, "MatMulPacked: a must be 2-D");
  Require(a.dim(1) == b.k, "MatMulPacked: inner dimension mismatch");
  Tensor c({a.dim(0), b.n});
  MatMulPackedInto(a.data().data(), a.dim(0), b, c.data().data(), allow_threads);
  return c;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Require2D(a, "MatMul: a must be 2-D");
  Require2D(b, "MatMul: b must be 2-D");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Require(b.dim(0) == k, "MatMul: inner dimension mismatch");
  if (UsePackedGemm(m, k, n)) {
    // Pack into a per-thread scratch so back-to-back training GEMMs reuse the
    // allocation; the inference fast path instead multiplies against packs
    // cached per nn::Linear, hitting the identical kernel (and therefore the
    // identical bits) without the per-call packing.
    thread_local PackedB scratch;
    PackBInto(b.data().data(), k, n, scratch);
    Tensor c({m, n});
    MatMulPackedInto(a.data().data(), m, scratch, c.data().data());
    return c;
  }
  return MatMulNaive(a, b);
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  Require2D(a, "MatMulTransA: a must be 2-D");
  Require2D(b, "MatMulTransA: b must be 2-D");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Require(b.dim(0) == k, "MatMulTransA: leading dimension mismatch");
  Tensor c({m, n});
  const float* __restrict pa = a.data().data();
  const float* __restrict pb = b.data().data();
  float* __restrict pc = c.data().data();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  Require2D(a, "MatMulTransB: a must be 2-D");
  Require2D(b, "MatMulTransB: b must be 2-D");
  Require(b.dim(1) == a.dim(1), "MatMulTransB: trailing dimension mismatch");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (UsePackedGemm(m, k, n)) {
    // Pack straight from the transposed layout — packing is a gather either
    // way, so materializing B^T first would just be an extra O(k*n) copy.
    thread_local PackedB scratch;
    PackBTransposedInto(b.data().data(), k, n, scratch);
    Tensor c({m, n});
    MatMulPackedInto(a.data().data(), m, scratch, c.data().data());
    return c;
  }
  // Materializing B^T keeps the multiply in the vectorizable i-k-j kernel —
  // a dot-product formulation is a float reduction the compiler will not
  // vectorize without fast-math. The transpose is O(k*n) vs O(m*k*n).
  return MatMulNaive(a, Transpose2D(b));
}

namespace {

template <typename F>
Tensor ZipSameShape(const Tensor& a, const Tensor& b, const char* name, F&& f) {
  Require(a.SameShape(b), name);
  Tensor out(a.shape());
  const auto da = a.data();
  const auto db = b.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i], db[i]);
  return out;
}

template <typename F>
Tensor MapElems(const Tensor& a, F&& f) {
  Tensor out(a.shape());
  const auto da = a.data();
  auto dout = out.data();
  for (std::size_t i = 0; i < da.size(); ++i) dout[i] = f(da[i]);
  return out;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, "Add: shape mismatch", [](float x, float y) { return x + y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, "Sub: shape mismatch", [](float x, float y) { return x - y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ZipSameShape(a, b, "Mul: shape mismatch", [](float x, float y) { return x * y; });
}

Tensor Scale(const Tensor& a, float s) {
  return MapElems(a, [s](float x) { return x * s; });
}

Tensor AddRowVector(const Tensor& m, const Tensor& bias) {
  Require2D(m, "AddRowVector: m must be 2-D");
  Require(bias.rank() == 1 && bias.dim(0) == m.dim(1), "AddRowVector: bias shape mismatch");
  Tensor out(m.shape());
  const std::int64_t rows = m.dim(0), cols = m.dim(1);
  const float* __restrict pm = m.data().data();
  const float* __restrict pb = bias.data().data();
  float* __restrict po = out.data().data();
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) po[i * cols + j] = pm[i * cols + j] + pb[j];
  }
  return out;
}

Tensor RowSoftmax(const Tensor& logits, const Tensor* additive_mask) {
  Require2D(logits, "RowSoftmax: logits must be 2-D");
  if (additive_mask != nullptr) {
    Require(additive_mask->SameShape(logits), "RowSoftmax: mask shape mismatch");
  }
  const std::int64_t rows = logits.dim(0), cols = logits.dim(1);
  Tensor out(logits.shape());
  const float* pl = logits.data().data();
  const float* pm = additive_mask != nullptr ? additive_mask->data().data() : nullptr;
  float* po = out.data().data();
  constexpr float kNegInfCut = -1e30f;
  std::vector<float> shifted(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* lrow = pl + i * cols;
    const float* mrow = pm != nullptr ? pm + i * cols : nullptr;
    float* orow = po + i * cols;
    float maxv = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < cols; ++j) {
      const float v = lrow[j] + (mrow != nullptr ? mrow[j] : 0.0f);
      maxv = std::max(maxv, v);
    }
    if (maxv < kNegInfCut) {  // fully masked row
      std::fill(orow, orow + cols, 0.0f);
      continue;
    }
    for (std::int64_t j = 0; j < cols; ++j) {
      const float v = lrow[j] + (mrow != nullptr ? mrow[j] : 0.0f);
      shifted[static_cast<std::size_t>(j)] = v - maxv;  // -inf stays -inf
    }
    simd::ExpNonPositiveN(shifted.data(), orow, cols);
    const float inv = 1.0f / simd::Sum(orow, cols);
    for (std::int64_t j = 0; j < cols; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  return MapElems(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return MapElems(a, [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; });
}

Tensor Gelu(const Tensor& a) {
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  return MapElems(a, [](float x) {
    const float inner = kC * (x + 0.044715f * x * x * x);
    return 0.5f * x * (1.0f + std::tanh(inner));
  });
}

Tensor Tanh(const Tensor& a) {
  return MapElems(a, [](float x) { return std::tanh(x); });
}

Tensor Transpose2D(const Tensor& a) {
  Require2D(a, "Transpose2D: a must be 2-D");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  Require2D(a, "SumRows: a must be 2-D");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const float* pa = a.data().data();
  float* po = out.data().data();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) po[j] += pa[i * n + j];
  }
  return out;
}

Tensor SumCols(const Tensor& a) {
  Require2D(a, "SumCols: a must be 2-D");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  const float* pa = a.data().data();
  float* po = out.data().data();
  for (std::int64_t i = 0; i < m; ++i) {
    float acc = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) acc += pa[i * n + j];
    po[i] = acc;
  }
  return out;
}

float SumAll(const Tensor& a) noexcept {
  float s = 0.0f;
  for (float v : a.data()) s += v;
  return s;
}

}  // namespace predtop::tensor

#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace predtop::tensor {

std::int64_t NumElements(const Shape& shape) noexcept {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(std::max<std::int64_t>(0, NumElements(shape_))), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(std::max<std::int64_t>(0, NumElements(shape_))), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (NumElements(shape_) != static_cast<std::int64_t>(data_.size())) {
    throw std::invalid_argument("Tensor: data size does not match shape " + ShapeToString(shape_));
  }
}

Tensor Tensor::Randn(Shape shape, util::Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.Normal(0.0, stddev));
  return t;
}

Tensor Tensor::RandUniform(Shape shape, util::Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::Reshaped(Shape shape) const {
  if (NumElements(shape) != numel()) {
    throw std::invalid_argument("Reshaped: element count mismatch " + ShapeToString(shape_) +
                                " -> " + ShapeToString(shape));
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }

void Tensor::AddInPlace(const Tensor& other) {
  if (!SameShape(other)) {
    throw std::invalid_argument("AddInPlace: shape mismatch " + ShapeToString(shape_) + " vs " +
                                ShapeToString(other.shape_));
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::ScaleInPlace(float s) noexcept {
  for (float& v : data_) v *= s;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  if (!a.SameShape(b)) {
    throw std::invalid_argument("MaxAbsDiff: shape mismatch");
  }
  float m = 0.0f;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) m = std::max(m, std::fabs(da[i] - db[i]));
  return m;
}

}  // namespace predtop::tensor

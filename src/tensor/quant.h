#pragma once
// Reduced-precision packed weight panels for the inference GEMM tier.
//
// Two storage formats, both mirroring PackedB's panel-major layout (kGemmPanel
// columns per panel, k-major within a panel, ragged last panel zero-padded):
//  - PackedB16: bf16 weights (round-to-nearest-even truncation of fp32 to its
//    top 16 bits), widened back to fp32 in the micro-kernel;
//  - PackedB8: int8 weights with a symmetric per-output-column scale
//    (maxabs / 127), dequantized once per column *after* the k loop.
// Accumulation is always fp32, so both tiers keep the packed kernel's
// deterministic ascending-k accumulation order; only the weight operand loses
// precision (activations stay fp32). Documented tolerance: <= 1e-2 relative
// against the fp32 kernel for well-scaled weights (bf16 has 8 mantissa bits,
// int8 ~1/254 of the column's max magnitude per step).
//
// The tier is selected process-wide via PREDTOP_GEMM_PREC={fp32,bf16,int8}
// (SetWeightPrec is the in-process A/B lever); nn::Linear folds the choice
// into its epoch-invalidated weight snapshots and the compiled inference
// programs inherit it through those snapshots.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace predtop::tensor {

enum class GemmPrec : std::uint8_t { kFp32 = 0, kBf16 = 1, kInt8 = 2 };

/// Process-wide weight-precision tier for inference GEMMs. Default parses
/// PREDTOP_GEMM_PREC (unknown values fall back to fp32).
[[nodiscard]] GemmPrec WeightPrec() noexcept;
void SetWeightPrec(GemmPrec prec) noexcept;
[[nodiscard]] const char* GemmPrecName(GemmPrec prec) noexcept;

/// fp32 -> bf16 with round-to-nearest-even; NaN payloads are kept quiet.
[[nodiscard]] std::uint16_t Bf16FromF32(float v) noexcept;
[[nodiscard]] float F32FromBf16(std::uint16_t h) noexcept;

/// bf16 B(k, n) packed panel-major (same geometry as PackedB).
struct PackedB16 {
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::vector<std::uint16_t> data;
};

/// int8 B(k, n) packed panel-major with per-output-column scales. `scales` is
/// padded to whole panels so the kernel can load full vectors; pad columns
/// carry scale 0 (their accumulators are discarded anyway).
struct PackedB8 {
  std::int64_t k = 0;
  std::int64_t n = 0;
  std::vector<std::int8_t> data;
  std::vector<float> scales;
};

/// Pack row-major b (k, n); `ldb` as in PackBInto (-1 means contiguous).
void PackB16Into(const float* b, std::int64_t k, std::int64_t n, PackedB16& out,
                 std::int64_t ldb = -1);
void PackB8Into(const float* b, std::int64_t k, std::int64_t n, PackedB8& out,
                std::int64_t ldb = -1);

/// C(m, n) = A(m, k) * dequant(B); `c` fully overwritten, row strides as in
/// MatMulPackedStridedInto. Serial by design — every shape the predictor
/// serves is far below the threaded-GEMM threshold.
void MatMulPackedB16StridedInto(const float* a, std::int64_t m, std::int64_t lda,
                                const PackedB16& b, float* c, std::int64_t ldc);
void MatMulPackedB8StridedInto(const float* a, std::int64_t m, std::int64_t lda,
                               const PackedB8& b, float* c, std::int64_t ldc);

inline void MatMulPackedB16Into(const float* a, std::int64_t m, const PackedB16& b,
                                float* c) {
  MatMulPackedB16StridedInto(a, m, b.k, b, c, b.n);
}
inline void MatMulPackedB8Into(const float* a, std::int64_t m, const PackedB8& b,
                               float* c) {
  MatMulPackedB8StridedInto(a, m, b.k, b, c, b.n);
}

}  // namespace predtop::tensor

#pragma once
// Explicit SIMD helpers built on GCC/Clang vector extensions. The compiler
// cannot auto-vectorize float reductions (not associative) or the
// bit-twiddling exp approximation, so the two hot spots of predictor
// training — narrow-output GEMMs and attention softmax — use these 8-wide
// kernels directly. Scalar fallbacks keep other compilers working.

#include <cstdint>
#include <cstring>

namespace predtop::tensor::simd {

#if defined(__GNUC__) || defined(__clang__)
#define PREDTOP_HAVE_VECTOR_EXT 1
using F8 = float __attribute__((vector_size(32)));
using I8 = std::int32_t __attribute__((vector_size(32)));

inline F8 Broadcast(float v) noexcept { return F8{v, v, v, v, v, v, v, v}; }

inline float HorizontalSum(F8 v) noexcept {
  return v[0] + v[1] + v[2] + v[3] + v[4] + v[5] + v[6] + v[7];
}
#endif

/// Dot product of two contiguous float spans of length n.
[[nodiscard]] inline float Dot(const float* __restrict a, const float* __restrict b,
                               std::int64_t n) noexcept {
#ifdef PREDTOP_HAVE_VECTOR_EXT
  F8 acc0 = Broadcast(0.0f);
  F8 acc1 = Broadcast(0.0f);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    F8 va0, vb0, va1, vb1;
    std::memcpy(&va0, a + i, sizeof va0);
    std::memcpy(&vb0, b + i, sizeof vb0);
    std::memcpy(&va1, a + i + 8, sizeof va1);
    std::memcpy(&vb1, b + i + 8, sizeof vb1);
    acc0 += va0 * vb0;
    acc1 += va1 * vb1;
  }
  float total = HorizontalSum(acc0 + acc1);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
#else
  float total = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
#endif
}

/// Sum of a contiguous float span.
[[nodiscard]] inline float Sum(const float* __restrict a, std::int64_t n) noexcept {
#ifdef PREDTOP_HAVE_VECTOR_EXT
  F8 acc = Broadcast(0.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    F8 va;
    std::memcpy(&va, a + i, sizeof va);
    acc += va;
  }
  float total = HorizontalSum(acc);
  for (; i < n; ++i) total += a[i];
  return total;
#else
  float total = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) total += a[i];
  return total;
#endif
}

/// Scalar exp approximation for non-positive inputs (range-reduced 2^f
/// polynomial, ~1e-4 relative error on [-87, 0]; underflows to 0 below).
[[nodiscard]] inline float ExpNonPositive(float x) noexcept {
  const float y = x * 1.442695041f;
  const float n = static_cast<float>(static_cast<int>(y - 0.5f));  // floor for y <= 0
  const float f = y - n;                                           // in [0, 1)
  float p = 1.8775767e-3f;
  p = p * f + 8.9893397e-3f;
  p = p * f + 5.5826318e-2f;
  p = p * f + 2.4015361e-1f;
  p = p * f + 6.9315308e-1f;
  p = p * f + 9.9999994e-1f;
  const int ni = static_cast<int>(n) + 127;
  if (ni <= 0) return 0.0f;
  std::uint32_t bits = static_cast<std::uint32_t>(ni) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return p * scale;
}

/// out[i] = exp(x[i]) for non-positive x, vectorized 8-wide. Values below
/// the underflow cutoff produce 0.
inline void ExpNonPositiveN(const float* __restrict x, float* __restrict out,
                            std::int64_t n) noexcept {
#ifdef PREDTOP_HAVE_VECTOR_EXT
  std::int64_t i = 0;
  const F8 log2e = Broadcast(1.442695041f);
  const F8 half = Broadcast(0.5f);
  for (; i + 8 <= n; i += 8) {
    F8 vx;
    std::memcpy(&vx, x + i, sizeof vx);
    // Clamp the argument so fully-masked (-inf) entries stay finite; the
    // result underflows to exactly 0 via the exponent clamp below.
    const F8 floor_arg = Broadcast(-100.0f);
    vx = vx < floor_arg ? floor_arg : vx;
    const F8 y = vx * log2e;
    const I8 nint = __builtin_convertvector(y - half, I8);  // floor for y <= 0
    const F8 nf = __builtin_convertvector(nint, F8);
    const F8 f = y - nf;
    F8 p = Broadcast(1.8775767e-3f);
    p = p * f + Broadcast(8.9893397e-3f);
    p = p * f + Broadcast(5.5826318e-2f);
    p = p * f + Broadcast(2.4015361e-1f);
    p = p * f + Broadcast(6.9315308e-1f);
    p = p * f + Broadcast(9.9999994e-1f);
    I8 ni = nint + 127;
    const I8 underflow = ni <= 0;      // lanewise mask (-1 where true)
    ni = (ni & ~underflow) << 23;      // exponent bits become 0 on underflow
    F8 scale;
    std::memcpy(&scale, &ni, sizeof scale);
    const F8 result = p * scale;       // scale is +0.0 on underflow lanes
    std::memcpy(out + i, &result, sizeof result);
  }
  for (; i < n; ++i) out[i] = x[i] < -100.0f ? 0.0f : ExpNonPositive(x[i]);
#else
  for (std::int64_t i = 0; i < n; ++i) out[i] = x[i] < -100.0f ? 0.0f : ExpNonPositive(x[i]);
#endif
}

}  // namespace predtop::tensor::simd

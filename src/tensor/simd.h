#pragma once
// Explicit SIMD helpers built on GCC/Clang vector extensions. The compiler
// cannot auto-vectorize float reductions (not associative) or the
// bit-twiddling exp approximation, so the two hot spots of predictor
// training — narrow-output GEMMs and attention softmax — use these 8-wide
// kernels directly. Scalar fallbacks keep other compilers working.

#include <cstdint>
#include <cstring>
#include <limits>

namespace predtop::tensor::simd {

#if defined(__GNUC__) || defined(__clang__)
#define PREDTOP_HAVE_VECTOR_EXT 1
using F8 = float __attribute__((vector_size(32)));
using I8 = std::int32_t __attribute__((vector_size(32)));

inline F8 Broadcast(float v) noexcept { return F8{v, v, v, v, v, v, v, v}; }

inline float HorizontalSum(F8 v) noexcept {
  return v[0] + v[1] + v[2] + v[3] + v[4] + v[5] + v[6] + v[7];
}

inline float HorizontalMax(F8 v) noexcept {
  float m = v[0];
  for (int i = 1; i < 8; ++i) m = v[i] > m ? v[i] : m;
  return m;
}

#if defined(__AVX512F__)
inline float HorizontalSum16(float __attribute__((vector_size(64))) v) noexcept {
  float total = v[0];
  for (int i = 1; i < 16; ++i) total += v[i];
  return total;
}
#endif

// 16-wide twins, native on AVX-512 and legalized to narrower ops elsewhere;
// elementwise kernels produce the same bits at any width, so these are
// drop-in fast paths, not a numeric fork.
using F16 = float __attribute__((vector_size(64)));
using I16 = std::int32_t __attribute__((vector_size(64)));

inline F16 Broadcast16(float v) noexcept {
  return F16{v, v, v, v, v, v, v, v, v, v, v, v, v, v, v, v};
}
#endif

/// Dot product of two contiguous float spans of length n.
[[nodiscard]] inline float Dot(const float* __restrict a, const float* __restrict b,
                               std::int64_t n) noexcept {
#ifdef PREDTOP_HAVE_VECTOR_EXT
  F8 acc0 = Broadcast(0.0f);
  F8 acc1 = Broadcast(0.0f);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    F8 va0, vb0, va1, vb1;
    std::memcpy(&va0, a + i, sizeof va0);
    std::memcpy(&vb0, b + i, sizeof vb0);
    std::memcpy(&va1, a + i + 8, sizeof va1);
    std::memcpy(&vb1, b + i + 8, sizeof vb1);
    acc0 += va0 * vb0;
    acc1 += va1 * vb1;
  }
  float total = HorizontalSum(acc0 + acc1);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
#else
  float total = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) total += a[i] * b[i];
  return total;
#endif
}

/// Sum of a contiguous float span.
[[nodiscard]] inline float Sum(const float* __restrict a, std::int64_t n) noexcept {
#ifdef PREDTOP_HAVE_VECTOR_EXT
  F8 acc = Broadcast(0.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    F8 va;
    std::memcpy(&va, a + i, sizeof va);
    acc += va;
  }
  float total = HorizontalSum(acc);
  for (; i < n; ++i) total += a[i];
  return total;
#else
  float total = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) total += a[i];
  return total;
#endif
}

/// Sum over i of (x[i] - c)^2. Lane-split reduction: the value can differ
/// from a sequential sum in the last bits (callers accept ~1e-7 relative
/// divergence; see infer::LayerNorm).
[[nodiscard]] inline float SumSquaredDiff(const float* __restrict x, float c,
                                          std::int64_t n) noexcept {
#ifdef PREDTOP_HAVE_VECTOR_EXT
  const F8 vc = Broadcast(c);
  F8 acc = Broadcast(0.0f);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    F8 vx;
    std::memcpy(&vx, x + i, sizeof vx);
    const F8 d = vx - vc;
    acc += d * d;
  }
  float total = HorizontalSum(acc);
  for (; i < n; ++i) {
    const float d = x[i] - c;
    total += d * d;
  }
  return total;
#else
  float total = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float d = x[i] - c;
    total += d * d;
  }
  return total;
#endif
}

/// Scalar exp approximation for non-positive inputs (range-reduced 2^f
/// polynomial, ~1e-4 relative error on [-87, 0]; underflows to 0 below).
[[nodiscard]] inline float ExpNonPositive(float x) noexcept {
  const float y = x * 1.442695041f;
  const float n = static_cast<float>(static_cast<int>(y - 0.5f));  // floor for y <= 0
  const float f = y - n;                                           // in [0, 1)
  float p = 1.8775767e-3f;
  p = p * f + 8.9893397e-3f;
  p = p * f + 5.5826318e-2f;
  p = p * f + 2.4015361e-1f;
  p = p * f + 6.9315308e-1f;
  p = p * f + 9.9999994e-1f;
  const int ni = static_cast<int>(n) + 127;
  if (ni <= 0) return 0.0f;
  std::uint32_t bits = static_cast<std::uint32_t>(ni) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof scale);
  return p * scale;
}

#ifdef PREDTOP_HAVE_VECTOR_EXT
/// One 8-wide step of the exp approximation, input pre-clamped per lane to
/// [-100, 0] by the caller (the clamp makes fully-masked -inf entries
/// underflow to exactly 0 via the exponent clamp below).
inline F8 ExpNonPositiveV(F8 vx) noexcept {
  const F8 floor_arg = Broadcast(-100.0f);
  vx = vx < floor_arg ? floor_arg : vx;
  const F8 y = vx * Broadcast(1.442695041f);
  const I8 nint = __builtin_convertvector(y - Broadcast(0.5f), I8);  // floor for y <= 0
  const F8 nf = __builtin_convertvector(nint, F8);
  const F8 f = y - nf;
  F8 p = Broadcast(1.8775767e-3f);
  p = p * f + Broadcast(8.9893397e-3f);
  p = p * f + Broadcast(5.5826318e-2f);
  p = p * f + Broadcast(2.4015361e-1f);
  p = p * f + Broadcast(6.9315308e-1f);
  p = p * f + Broadcast(9.9999994e-1f);
  I8 ni = nint + 127;
  const I8 underflow = ni <= 0;  // lanewise mask (-1 where true)
  ni = (ni & ~underflow) << 23;  // exponent bits become 0 on underflow
  F8 scale;
  std::memcpy(&scale, &ni, sizeof scale);
  return p * scale;  // scale is +0.0 on underflow lanes
}

#if defined(__AVX512F__)
/// 16-wide twin of ExpNonPositiveV — same polynomial, same rounding, same
/// bits per lane, half the instructions per element.
inline F16 ExpNonPositiveV16(F16 vx) noexcept {
  const F16 floor_arg = Broadcast16(-100.0f);
  vx = vx < floor_arg ? floor_arg : vx;
  const F16 y = vx * Broadcast16(1.442695041f);
  const I16 nint = __builtin_convertvector(y - Broadcast16(0.5f), I16);
  const F16 nf = __builtin_convertvector(nint, F16);
  const F16 f = y - nf;
  F16 p = Broadcast16(1.8775767e-3f);
  p = p * f + Broadcast16(8.9893397e-3f);
  p = p * f + Broadcast16(5.5826318e-2f);
  p = p * f + Broadcast16(2.4015361e-1f);
  p = p * f + Broadcast16(6.9315308e-1f);
  p = p * f + Broadcast16(9.9999994e-1f);
  I16 ni = nint + 127;
  const I16 underflow = ni <= 0;
  ni = (ni & ~underflow) << 23;
  F16 scale;
  std::memcpy(&scale, &ni, sizeof scale);
  return p * scale;
}
#endif
#endif

/// out[i] = exp(x[i]) for non-positive x, vectorized. Values below the
/// underflow cutoff produce 0.
inline void ExpNonPositiveN(const float* __restrict x, float* __restrict out,
                            std::int64_t n) noexcept {
#ifdef PREDTOP_HAVE_VECTOR_EXT
  std::int64_t i = 0;
#if defined(__AVX512F__)
  for (; i + 16 <= n; i += 16) {
    F16 vx;
    std::memcpy(&vx, x + i, sizeof vx);
    const F16 result = ExpNonPositiveV16(vx);
    std::memcpy(out + i, &result, sizeof result);
  }
#endif
  for (; i + 8 <= n; i += 8) {
    F8 vx;
    std::memcpy(&vx, x + i, sizeof vx);
    const F8 result = ExpNonPositiveV(vx);
    std::memcpy(out + i, &result, sizeof result);
  }
  for (; i < n; ++i) out[i] = x[i] < -100.0f ? 0.0f : ExpNonPositive(x[i]);
#else
  for (std::int64_t i = 0; i < n; ++i) out[i] = x[i] < -100.0f ? 0.0f : ExpNonPositive(x[i]);
#endif
}

/// max over i of x[i] + add[i] (`add` nullable). The per-lane adds are the
/// same elementwise operations as the scalar loop and max is exactly
/// associative, so this reduction is bit-identical to a sequential pass.
[[nodiscard]] inline float MaskedRowMax(const float* __restrict x, const float* __restrict add,
                                        std::int64_t n) noexcept {
  float maxv = -std::numeric_limits<float>::infinity();
  std::int64_t i = 0;
#ifdef PREDTOP_HAVE_VECTOR_EXT
  if (n >= 8) {
    F8 vmax = Broadcast(-std::numeric_limits<float>::infinity());
    if (add != nullptr) {
      for (; i + 8 <= n; i += 8) {
        F8 vx, va;
        std::memcpy(&vx, x + i, sizeof vx);
        std::memcpy(&va, add + i, sizeof va);
        const F8 v = vx + va;
        vmax = v > vmax ? v : vmax;
      }
    } else {
      for (; i + 8 <= n; i += 8) {
        F8 vx;
        std::memcpy(&vx, x + i, sizeof vx);
        vmax = vx > vmax ? vx : vmax;
      }
    }
    maxv = HorizontalMax(vmax);
  }
#endif
  for (; i < n; ++i) {
    const float v = x[i] + (add != nullptr ? add[i] : 0.0f);
    maxv = v > maxv ? v : maxv;
  }
  return maxv;
}

/// out[i] = exp(x[i] + add[i] - shift) with `add` nullable and the arguments
/// guaranteed non-positive (shift is the row max). Fuses the softmax shift
/// pass into the exp pass; per element this is the identical float sequence
/// (add, subtract, ExpNonPositive) as the two-pass formulation.
inline void ExpShiftedNonPositiveN(const float* __restrict x, const float* __restrict add,
                                   float shift, float* __restrict out,
                                   std::int64_t n) noexcept {
  std::int64_t i = 0;
#ifdef PREDTOP_HAVE_VECTOR_EXT
  const F8 vshift = Broadcast(shift);
  if (add != nullptr) {
#if defined(__AVX512F__)
    const F16 wshift = Broadcast16(shift);
    for (; i + 16 <= n; i += 16) {
      F16 vx, va;
      std::memcpy(&vx, x + i, sizeof vx);
      std::memcpy(&va, add + i, sizeof va);
      const F16 result = ExpNonPositiveV16((vx + va) - wshift);
      std::memcpy(out + i, &result, sizeof result);
    }
#endif
    for (; i + 8 <= n; i += 8) {
      F8 vx, va;
      std::memcpy(&vx, x + i, sizeof vx);
      std::memcpy(&va, add + i, sizeof va);
      const F8 result = ExpNonPositiveV((vx + va) - vshift);
      std::memcpy(out + i, &result, sizeof result);
    }
  } else {
#if defined(__AVX512F__)
    const F16 wshift = Broadcast16(shift);
    for (; i + 16 <= n; i += 16) {
      F16 vx;
      std::memcpy(&vx, x + i, sizeof vx);
      const F16 result = ExpNonPositiveV16(vx - wshift);
      std::memcpy(out + i, &result, sizeof result);
    }
#endif
    for (; i + 8 <= n; i += 8) {
      F8 vx;
      std::memcpy(&vx, x + i, sizeof vx);
      const F8 result = ExpNonPositiveV(vx - vshift);
      std::memcpy(out + i, &result, sizeof result);
    }
  }
#endif
  for (; i < n; ++i) {
    const float v = x[i] + (add != nullptr ? add[i] : 0.0f) - shift;
    out[i] = v < -100.0f ? 0.0f : ExpNonPositive(v);
  }
}

/// ExpShiftedNonPositiveN that also returns the sum of the outputs,
/// accumulated in vector lanes during the exp pass (lane-split order, so the
/// value can differ from a sequential sum in the last bits).
inline float ExpShiftedNonPositiveSumN(const float* __restrict x, const float* __restrict add,
                                       float shift, float* __restrict out,
                                       std::int64_t n) noexcept {
  float total = 0.0f;
  std::int64_t i = 0;
#ifdef PREDTOP_HAVE_VECTOR_EXT
  F8 acc8 = Broadcast(0.0f);
  const F8 vshift = Broadcast(shift);
#if defined(__AVX512F__)
  F16 acc16 = Broadcast16(0.0f);
  const F16 wshift = Broadcast16(shift);
  for (; i + 16 <= n; i += 16) {
    F16 vx;
    std::memcpy(&vx, x + i, sizeof vx);
    if (add != nullptr) {
      F16 va;
      std::memcpy(&va, add + i, sizeof va);
      vx += va;
    }
    const F16 result = ExpNonPositiveV16(vx - wshift);
    acc16 += result;
    std::memcpy(out + i, &result, sizeof result);
  }
  total += HorizontalSum16(acc16);
#endif
  for (; i + 8 <= n; i += 8) {
    F8 vx;
    std::memcpy(&vx, x + i, sizeof vx);
    if (add != nullptr) {
      F8 va;
      std::memcpy(&va, add + i, sizeof va);
      vx += va;
    }
    const F8 result = ExpNonPositiveV(vx - vshift);
    acc8 += result;
    std::memcpy(out + i, &result, sizeof result);
  }
  total += HorizontalSum(acc8);
#endif
  for (; i < n; ++i) {
    const float v = x[i] + (add != nullptr ? add[i] : 0.0f) - shift;
    const float e = v < -100.0f ? 0.0f : ExpNonPositive(v);
    out[i] = e;
    total += e;
  }
  return total;
}

}  // namespace predtop::tensor::simd

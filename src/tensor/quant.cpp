#include "tensor/quant.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>

#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/env.h"

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace predtop::tensor {

namespace {

GemmPrec ParsePrec(const std::string& s) noexcept {
  if (s == "bf16") return GemmPrec::kBf16;
  if (s == "int8") return GemmPrec::kInt8;
  return GemmPrec::kFp32;
}

std::atomic<GemmPrec>& PrecFlag() noexcept {
  static std::atomic<GemmPrec> prec{
      ParsePrec(util::EnvString("PREDTOP_GEMM_PREC").value_or("fp32"))};
  return prec;
}

}  // namespace

GemmPrec WeightPrec() noexcept { return PrecFlag().load(std::memory_order_relaxed); }

void SetWeightPrec(GemmPrec prec) noexcept {
  PrecFlag().store(prec, std::memory_order_relaxed);
}

const char* GemmPrecName(GemmPrec prec) noexcept {
  switch (prec) {
    case GemmPrec::kBf16: return "bf16";
    case GemmPrec::kInt8: return "int8";
    default: return "fp32";
  }
}

std::uint16_t Bf16FromF32(float v) noexcept {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  if (std::isnan(v)) return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  bits += 0x7FFFu + ((bits >> 16) & 1u);  // round to nearest, ties to even
  return static_cast<std::uint16_t>(bits >> 16);
}

float F32FromBf16(std::uint16_t h) noexcept {
  const std::uint32_t bits = static_cast<std::uint32_t>(h) << 16;
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

void PackB16Into(const float* b, std::int64_t k, std::int64_t n, PackedB16& out,
                 std::int64_t ldb) {
  if (ldb < 0) ldb = n;
  out.k = k;
  out.n = n;
  const std::int64_t num_panels = (n + kGemmPanel - 1) / kGemmPanel;
  out.data.assign(static_cast<std::size_t>(num_panels * k * kGemmPanel), 0);
  for (std::int64_t p = 0; p < num_panels; ++p) {
    const std::int64_t j0 = p * kGemmPanel;
    const std::int64_t w = std::min<std::int64_t>(kGemmPanel, n - j0);
    std::uint16_t* panel = out.data.data() + p * k * kGemmPanel;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* src = b + kk * ldb + j0;
      for (std::int64_t j = 0; j < w; ++j) panel[kk * kGemmPanel + j] = Bf16FromF32(src[j]);
    }
  }
}

void PackB8Into(const float* b, std::int64_t k, std::int64_t n, PackedB8& out,
                std::int64_t ldb) {
  if (ldb < 0) ldb = n;
  out.k = k;
  out.n = n;
  const std::int64_t num_panels = (n + kGemmPanel - 1) / kGemmPanel;
  out.data.assign(static_cast<std::size_t>(num_panels * k * kGemmPanel), 0);
  out.scales.assign(static_cast<std::size_t>(num_panels * kGemmPanel), 0.0f);
  for (std::int64_t j = 0; j < n; ++j) {
    float maxabs = 0.0f;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      maxabs = std::max(maxabs, std::fabs(b[kk * ldb + j]));
    }
    // Per-column scale chosen to minimise weight reconstruction MSE over a
    // small clip-ratio sweep. Trained columns are heavy-tailed: a single
    // outlier under plain absmax inflates the step for every other weight,
    // and clipping the outlier costs far less than it saves. Column-local,
    // so a combined [Wq|Wk|Wv] pack quantises bit-identically to three
    // separate packs.
    float scale = maxabs / 127.0f;
    if (maxabs > 0.0f) {
      float best_err = -1.0f;
      float best_scale = scale;
      for (const float ratio : {1.0f, 0.875f, 0.75f, 0.625f, 0.5f}) {
        const float s = (maxabs * ratio) / 127.0f;
        const float inv_s = 1.0f / s;
        float err = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const float w = b[kk * ldb + j];
          const float q = std::clamp(std::nearbyint(w * inv_s), -127.0f, 127.0f);
          const float d = w - q * s;
          err += d * d;
        }
        if (best_err < 0.0f || err < best_err) {
          best_err = err;
          best_scale = s;
        }
      }
      scale = best_scale;
    }
    out.scales[static_cast<std::size_t>(j)] = scale;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    std::int8_t* panel = out.data.data() + (j / kGemmPanel) * k * kGemmPanel;
    const std::int64_t jp = j % kGemmPanel;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float q = std::nearbyint(b[kk * ldb + j] * inv);
      panel[kk * kGemmPanel + jp] =
          static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
    }
  }
}

// ---- micro-kernels -------------------------------------------------------
//
// Same register tile as the fp32 kernel (kGemmMr x kGemmPanel, fp32
// accumulators held in registers across the whole k loop); only the B load
// widens from the reduced storage. int8 additionally multiplies the finished
// accumulators by the per-column scale vector before the store, so the
// dequantization costs 2 multiplies per output element regardless of k.

#ifdef PREDTOP_HAVE_VECTOR_EXT

namespace {

using U16x8 = std::uint16_t __attribute__((vector_size(16)));
using U32x8 = std::uint32_t __attribute__((vector_size(32)));
using S8x8 = std::int8_t __attribute__((vector_size(8)));

inline simd::F8 WidenBf16x8(const std::uint16_t* p) noexcept {
  U16x8 h;
  std::memcpy(&h, p, sizeof h);
  const U32x8 w = __builtin_convertvector(h, U32x8) << 16;
  simd::F8 f;
  std::memcpy(&f, &w, sizeof f);
  return f;
}

inline simd::F8 WidenI8x8(const std::int8_t* p) noexcept {
  // The sign-extend + int-to-float pair must come from intrinsics: GCC
  // scalarizes __builtin_convertvector's byte-to-float widening into 8
  // separate converts, which made the int8 tier slower than fp32. The values
  // are exact small integers, so the instruction choice never changes a bit.
#if defined(__AVX2__)
  const __m256 f = _mm256_cvtepi32_ps(
      _mm256_cvtepi8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))));
  simd::F8 out;
  std::memcpy(&out, &f, sizeof out);
  return out;
#else
  S8x8 q;
  std::memcpy(&q, p, sizeof q);
  const simd::I8 w = __builtin_convertvector(q, simd::I8);
  return __builtin_convertvector(w, simd::F8);
#endif
}

using U16x16 = std::uint16_t __attribute__((vector_size(32)));
using U32x16 = std::uint32_t __attribute__((vector_size(64)));
using S8x16 = std::int8_t __attribute__((vector_size(16)));

inline simd::F16 WidenBf16x16(const std::uint16_t* p) noexcept {
  U16x16 h;
  std::memcpy(&h, p, sizeof h);
  const U32x16 w = __builtin_convertvector(h, U32x16) << 16;
  simd::F16 f;
  std::memcpy(&f, &w, sizeof f);
  return f;
}

inline simd::F16 WidenI8x16(const std::int8_t* p) noexcept {
#if defined(__AVX512F__)
  const __m512 f = _mm512_cvtepi32_ps(
      _mm512_cvtepi8_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))));
  simd::F16 out;
  std::memcpy(&out, &f, sizeof out);
  return out;
#else
  S8x16 q;
  std::memcpy(&q, p, sizeof q);
  const simd::I16 w = __builtin_convertvector(q, simd::I16);
  return __builtin_convertvector(w, simd::F16);
#endif
}

template <int MR>
void MicroKernelPanel16(const float* __restrict a, std::int64_t lda,
                        const std::uint16_t* __restrict bp, std::int64_t k,
                        float* __restrict c, std::int64_t ldc) {
  simd::F8 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = simd::Broadcast(0.0f);
    acc1[r] = simd::Broadcast(0.0f);
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const simd::F8 b0 = WidenBf16x8(bp + kk * kGemmPanel);
    const simd::F8 b1 = WidenBf16x8(bp + kk * kGemmPanel + 8);
    for (int r = 0; r < MR; ++r) {
      const simd::F8 av = simd::Broadcast(a[r * lda + kk]);
      acc0[r] += av * b0;
      acc1[r] += av * b1;
    }
  }
  for (int r = 0; r < MR; ++r) {
    std::memcpy(c + r * ldc, &acc0[r], sizeof(simd::F8));
    std::memcpy(c + r * ldc + 8, &acc1[r], sizeof(simd::F8));
  }
}

template <int MR>
void MicroKernelPanel8(const float* __restrict a, std::int64_t lda,
                       const std::int8_t* __restrict bp, std::int64_t k,
                       const float* __restrict scales, float* __restrict c,
                       std::int64_t ldc) {
  simd::F8 acc0[MR], acc1[MR];
  for (int r = 0; r < MR; ++r) {
    acc0[r] = simd::Broadcast(0.0f);
    acc1[r] = simd::Broadcast(0.0f);
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const simd::F8 b0 = WidenI8x8(bp + kk * kGemmPanel);
    const simd::F8 b1 = WidenI8x8(bp + kk * kGemmPanel + 8);
    for (int r = 0; r < MR; ++r) {
      const simd::F8 av = simd::Broadcast(a[r * lda + kk]);
      acc0[r] += av * b0;
      acc1[r] += av * b1;
    }
  }
  simd::F8 s0, s1;
  std::memcpy(&s0, scales, sizeof s0);
  std::memcpy(&s1, scales + 8, sizeof s1);
  for (int r = 0; r < MR; ++r) {
    acc0[r] *= s0;
    acc1[r] *= s1;
    std::memcpy(c + r * ldc, &acc0[r], sizeof(simd::F8));
    std::memcpy(c + r * ldc + 8, &acc1[r], sizeof(simd::F8));
  }
}

// Wide (one 16-float vector per panel) variants mirroring the fp32 kernel's
// 12-row tile; each lane still accumulates in ascending-k order, so they are
// bit-identical to the two-vector tiles above.
template <int MR>
void MicroKernelPanel16Wide(const float* __restrict a, std::int64_t lda,
                            const std::uint16_t* __restrict bp, std::int64_t k,
                            float* __restrict c, std::int64_t ldc) {
  simd::F16 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = simd::Broadcast16(0.0f);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const simd::F16 b = WidenBf16x16(bp + kk * kGemmPanel);
    for (int r = 0; r < MR; ++r) acc[r] += simd::Broadcast16(a[r * lda + kk]) * b;
  }
  for (int r = 0; r < MR; ++r) std::memcpy(c + r * ldc, &acc[r], sizeof(simd::F16));
}

template <int MR>
void MicroKernelPanel8Wide(const float* __restrict a, std::int64_t lda,
                           const std::int8_t* __restrict bp, std::int64_t k,
                           const float* __restrict scales, float* __restrict c,
                           std::int64_t ldc) {
  simd::F16 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = simd::Broadcast16(0.0f);
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const simd::F16 b = WidenI8x16(bp + kk * kGemmPanel);
    for (int r = 0; r < MR; ++r) acc[r] += simd::Broadcast16(a[r * lda + kk]) * b;
  }
  simd::F16 s;
  std::memcpy(&s, scales, sizeof s);
  for (int r = 0; r < MR; ++r) {
    acc[r] *= s;
    std::memcpy(c + r * ldc, &acc[r], sizeof(simd::F16));
  }
}

}  // namespace

#else  // scalar fallback for compilers without vector extensions

namespace {

template <int MR>
void MicroKernelPanel16(const float* __restrict a, std::int64_t lda,
                        const std::uint16_t* __restrict bp, std::int64_t k,
                        float* __restrict c, std::int64_t ldc) {
  float acc[MR][kGemmPanel] = {};
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::uint16_t* brow = bp + kk * kGemmPanel;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int j = 0; j < kGemmPanel; ++j) acc[r][j] += av * F32FromBf16(brow[j]);
    }
  }
  for (int r = 0; r < MR; ++r) std::memcpy(c + r * ldc, acc[r], sizeof acc[r]);
}

template <int MR>
void MicroKernelPanel8(const float* __restrict a, std::int64_t lda,
                       const std::int8_t* __restrict bp, std::int64_t k,
                       const float* __restrict scales, float* __restrict c,
                       std::int64_t ldc) {
  float acc[MR][kGemmPanel] = {};
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const std::int8_t* brow = bp + kk * kGemmPanel;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + kk];
      for (int j = 0; j < kGemmPanel; ++j) acc[r][j] += av * static_cast<float>(brow[j]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    for (int j = 0; j < kGemmPanel; ++j) c[r * ldc + j] = acc[r][j] * scales[j];
  }
}

// Without vector extensions there is no wide tile; delegate to the scalar
// kernels (still bit-identical — same ascending-k accumulation per element).
template <int MR>
void MicroKernelPanel16Wide(const float* a, std::int64_t lda, const std::uint16_t* bp,
                            std::int64_t k, float* c, std::int64_t ldc) {
  MicroKernelPanel16<MR>(a, lda, bp, k, c, ldc);
}

template <int MR>
void MicroKernelPanel8Wide(const float* a, std::int64_t lda, const std::int8_t* bp,
                           std::int64_t k, const float* scales, float* c,
                           std::int64_t ldc) {
  MicroKernelPanel8<MR>(a, lda, bp, k, scales, c, ldc);
}

}  // namespace

#endif

namespace {

template <int MR>
void Tile16(const float* a, std::int64_t lda, const std::uint16_t* bp, std::int64_t k,
            float* c, std::int64_t ldc) {
  MicroKernelPanel16<MR>(a, lda, bp, k, c, ldc);
}

void DispatchNarrow16(int mr, const float* a, std::int64_t lda, const std::uint16_t* bp,
                      std::int64_t k, float* c, std::int64_t ldc) {
  switch (mr) {
    case 6: Tile16<6>(a, lda, bp, k, c, ldc); break;
    case 5: Tile16<5>(a, lda, bp, k, c, ldc); break;
    case 4: Tile16<4>(a, lda, bp, k, c, ldc); break;
    case 3: Tile16<3>(a, lda, bp, k, c, ldc); break;
    case 2: Tile16<2>(a, lda, bp, k, c, ldc); break;
    default: Tile16<1>(a, lda, bp, k, c, ldc); break;
  }
}

// Flag-aware dispatch mirroring the fp32 kernel (ops.cpp): the wide 12-row
// tile when GemmWideTiles() is on, otherwise the historical tile with mr > 6
// split row-wise. Bit-identical either way.
void Dispatch16(int mr, const float* a, std::int64_t lda, const std::uint16_t* bp,
                std::int64_t k, float* c, std::int64_t ldc) {
  if (GemmWideTiles()) {
    switch (mr) {
      case 12: MicroKernelPanel16Wide<12>(a, lda, bp, k, c, ldc); break;
      case 11: MicroKernelPanel16Wide<11>(a, lda, bp, k, c, ldc); break;
      case 10: MicroKernelPanel16Wide<10>(a, lda, bp, k, c, ldc); break;
      case 9: MicroKernelPanel16Wide<9>(a, lda, bp, k, c, ldc); break;
      case 8: MicroKernelPanel16Wide<8>(a, lda, bp, k, c, ldc); break;
      case 7: MicroKernelPanel16Wide<7>(a, lda, bp, k, c, ldc); break;
      case 6: MicroKernelPanel16Wide<6>(a, lda, bp, k, c, ldc); break;
      case 5: MicroKernelPanel16Wide<5>(a, lda, bp, k, c, ldc); break;
      case 4: MicroKernelPanel16Wide<4>(a, lda, bp, k, c, ldc); break;
      case 3: MicroKernelPanel16Wide<3>(a, lda, bp, k, c, ldc); break;
      case 2: MicroKernelPanel16Wide<2>(a, lda, bp, k, c, ldc); break;
      default: MicroKernelPanel16Wide<1>(a, lda, bp, k, c, ldc); break;
    }
    return;
  }
  while (mr > 6) {
    DispatchNarrow16(6, a, lda, bp, k, c, ldc);
    a += 6 * lda;
    c += 6 * ldc;
    mr -= 6;
  }
  DispatchNarrow16(mr, a, lda, bp, k, c, ldc);
}

void DispatchNarrow8(int mr, const float* a, std::int64_t lda, const std::int8_t* bp,
                     std::int64_t k, const float* scales, float* c, std::int64_t ldc) {
  switch (mr) {
    case 6: MicroKernelPanel8<6>(a, lda, bp, k, scales, c, ldc); break;
    case 5: MicroKernelPanel8<5>(a, lda, bp, k, scales, c, ldc); break;
    case 4: MicroKernelPanel8<4>(a, lda, bp, k, scales, c, ldc); break;
    case 3: MicroKernelPanel8<3>(a, lda, bp, k, scales, c, ldc); break;
    case 2: MicroKernelPanel8<2>(a, lda, bp, k, scales, c, ldc); break;
    default: MicroKernelPanel8<1>(a, lda, bp, k, scales, c, ldc); break;
  }
}

void Dispatch8(int mr, const float* a, std::int64_t lda, const std::int8_t* bp,
               std::int64_t k, const float* scales, float* c, std::int64_t ldc) {
  if (GemmWideTiles()) {
    switch (mr) {
      case 12: MicroKernelPanel8Wide<12>(a, lda, bp, k, scales, c, ldc); break;
      case 11: MicroKernelPanel8Wide<11>(a, lda, bp, k, scales, c, ldc); break;
      case 10: MicroKernelPanel8Wide<10>(a, lda, bp, k, scales, c, ldc); break;
      case 9: MicroKernelPanel8Wide<9>(a, lda, bp, k, scales, c, ldc); break;
      case 8: MicroKernelPanel8Wide<8>(a, lda, bp, k, scales, c, ldc); break;
      case 7: MicroKernelPanel8Wide<7>(a, lda, bp, k, scales, c, ldc); break;
      case 6: MicroKernelPanel8Wide<6>(a, lda, bp, k, scales, c, ldc); break;
      case 5: MicroKernelPanel8Wide<5>(a, lda, bp, k, scales, c, ldc); break;
      case 4: MicroKernelPanel8Wide<4>(a, lda, bp, k, scales, c, ldc); break;
      case 3: MicroKernelPanel8Wide<3>(a, lda, bp, k, scales, c, ldc); break;
      case 2: MicroKernelPanel8Wide<2>(a, lda, bp, k, scales, c, ldc); break;
      default: MicroKernelPanel8Wide<1>(a, lda, bp, k, scales, c, ldc); break;
    }
    return;
  }
  while (mr > 6) {
    DispatchNarrow8(6, a, lda, bp, k, scales, c, ldc);
    a += 6 * lda;
    c += 6 * ldc;
    mr -= 6;
  }
  DispatchNarrow8(mr, a, lda, bp, k, scales, c, ldc);
}

}  // namespace

void MatMulPackedB16StridedInto(const float* a, std::int64_t m, std::int64_t lda,
                                const PackedB16& b, float* c, std::int64_t ldc) {
  if (m <= 0 || b.n <= 0) return;
  const std::int64_t k = b.k, n = b.n;
  const std::int64_t num_panels = (n + kGemmPanel - 1) / kGemmPanel;
  for (std::int64_t i = 0; i < m; i += kGemmMr) {
    const int mr = static_cast<int>(std::min<std::int64_t>(kGemmMr, m - i));
    const float* ablock = a + i * lda;
    float* cblock = c + i * ldc;
    for (std::int64_t p = 0; p < num_panels; ++p) {
      const std::uint16_t* bp = b.data.data() + p * k * kGemmPanel;
      const std::int64_t j0 = p * kGemmPanel;
      const std::int64_t w = std::min<std::int64_t>(kGemmPanel, n - j0);
      if (w == kGemmPanel) {
        Dispatch16(mr, ablock, lda, bp, k, cblock + j0, ldc);
      } else {
        float tmp[kGemmMr * kGemmPanel];
        Dispatch16(mr, ablock, lda, bp, k, tmp, kGemmPanel);
        for (int r = 0; r < mr; ++r) {
          std::memcpy(cblock + r * ldc + j0, tmp + r * kGemmPanel,
                      static_cast<std::size_t>(w) * sizeof(float));
        }
      }
    }
  }
}

void MatMulPackedB8StridedInto(const float* a, std::int64_t m, std::int64_t lda,
                               const PackedB8& b, float* c, std::int64_t ldc) {
  if (m <= 0 || b.n <= 0) return;
  const std::int64_t k = b.k, n = b.n;
  const std::int64_t num_panels = (n + kGemmPanel - 1) / kGemmPanel;
  for (std::int64_t i = 0; i < m; i += kGemmMr) {
    const int mr = static_cast<int>(std::min<std::int64_t>(kGemmMr, m - i));
    const float* ablock = a + i * lda;
    float* cblock = c + i * ldc;
    for (std::int64_t p = 0; p < num_panels; ++p) {
      const std::int8_t* bp = b.data.data() + p * k * kGemmPanel;
      const float* scales = b.scales.data() + p * kGemmPanel;
      const std::int64_t j0 = p * kGemmPanel;
      const std::int64_t w = std::min<std::int64_t>(kGemmPanel, n - j0);
      if (w == kGemmPanel) {
        Dispatch8(mr, ablock, lda, bp, k, scales, cblock + j0, ldc);
      } else {
        float tmp[kGemmMr * kGemmPanel];
        Dispatch8(mr, ablock, lda, bp, k, scales, tmp, kGemmPanel);
        for (int r = 0; r < mr; ++r) {
          std::memcpy(cblock + r * ldc + j0, tmp + r * kGemmPanel,
                      static_cast<std::size_t>(w) * sizeof(float));
        }
      }
    }
  }
}

}  // namespace predtop::tensor

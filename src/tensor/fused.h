#pragma once
// Fused epilogue kernels for the compiled inference programs (predtop::compile).
//
// Each kernel applies exactly the per-element float sequence of the unfused
// op chain it replaces — GEMM accumulate, then +bias, then activation /
// +residual, then LayerNorm with the same simd reductions as infer::LayerNorm
// — so a fused forward is bit-identical to the op-by-op fast path wherever
// that path is bit-identical to the tape, and stays inside the documented
// 1e-6 parity contract everywhere else. Fusion buys the memory passes, not a
// different formula.
//
// The deferred-softmax row kernel additionally takes an open-lane window
// [lo, hi): lanes outside the window are provably −inf-masked (weight exactly
// 0), so the caller can skip both their logit GEMM columns and their exp
// lanes. The retry path checks the mask instead of adding it — adding −inf to
// an overflowed +inf logit manufactures NaN (the RowSoftmaxDeferred bug this
// kernel also fixes for the op-by-op path, which calls it with a full-row
// window).

#include <cstdint>

namespace predtop::tensor::fused {

enum class Act : std::uint8_t { kNone = 0, kRelu = 1, kGelu = 2 };

/// In-place epilogue over `rows` rows of stride `ldc`: row[j] += bias[j]
/// (skipped when bias is null), then the activation. Same op order as
/// AddRowVectorInPlace followed by Relu/Gelu in place.
void BiasActRows(float* c, std::int64_t rows, std::int64_t cols, std::int64_t ldc,
                 const float* bias, Act act) noexcept;

/// One LayerNorm row: orow = gain * (xrow - mean) / sqrt(var + eps) + bias,
/// with the identical simd::Sum / simd::SumSquaredDiff reductions as
/// infer::LayerNorm (lane-split sums, ~1e-7 of the sequential training path).
void LayerNormRow(const float* xrow, const float* gain, const float* bias, float* orow,
                  std::int64_t cols, float eps = 1e-5f) noexcept;

/// One row of the deferred-normalization masked softmax restricted to the
/// open-lane window [lo, hi); lanes outside are set to exact 0. `mrow` (the
/// additive mask row, 0 / -inf) may be null. Writes the deferred 1/sum factor
/// to *inv (0 for a row with no surviving lane, so 0 * inv stays 0). The exp
/// shift is the window's unmasked max, exactly like RowSoftmaxDeferred; the
/// rare retry (underflow against a masked-lane-dominated shift) re-shifts by
/// the max over mask-checked open lanes only.
void DeferredSoftmaxRowWindow(const float* lrow, const float* mrow, float* orow,
                              std::int64_t cols, std::int64_t lo, std::int64_t hi,
                              float* inv) noexcept;

/// Chunked variant of DeferredSoftmaxRowWindow for callers that know the
/// row's exact open-lane runs (the compiled executor precomputes them once
/// per graph shape — the reachability mask is a shape invariant). `chunks`
/// holds `num_chunks` [lo, hi) pairs in ascending order; every lane outside
/// the runs is -inf masked and written as exact 0, and lanes inside need no
/// mask check at all. The exp shift is the max over the open lanes — the
/// same shift the tape's RowSoftmax sees after adding the mask — so a
/// masked logit can never dominate the shift and the windowed variant's
/// underflow retry is structurally impossible.
void DeferredSoftmaxRowChunks(const float* lrow, float* orow, std::int64_t cols,
                              const std::int32_t* chunks, std::int64_t num_chunks,
                              float* inv) noexcept;

/// The mask-checking retry shared with infer::RowSoftmaxDeferred: shift by
/// the max over lanes whose mask survives (never adding the mask), write exp
/// weights over [0, n), return the 1/sum factor (0 when no lane survives or
/// every surviving lane underflows).
[[nodiscard]] float MaskedSoftmaxRetryRow(const float* lrow, const float* mrow,
                                          float* orow, std::int64_t n) noexcept;

}  // namespace predtop::tensor::fused

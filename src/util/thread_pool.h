#pragma once
// Task-based thread pool (C++ Core Guidelines CP.4: think in terms of tasks).
//
// Used to parallelize independent experiment cells (predictor trainings,
// stage profiling) when more than one hardware thread is available; degrades
// to inline execution on single-core machines.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace predtop::util {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t ThreadCount() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future observes its completion/exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> Submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task] { (*task)(); });
    return fut;
  }

  /// Process-wide hook run by every pool's workers immediately before each
  /// dequeued task executes (fault-injection drills, test instrumentation).
  /// Pass nullptr to clear. The hook runs on worker threads concurrently and
  /// MUST NOT throw — there is no task context to absorb its exception (it
  /// may delay, record, or abort, not fail the task).
  static void SetTaskHook(std::function<void()> hook);

  /// Run fn(i) for i in [0, n), distributing across the pool, and wait.
  /// The calling thread participates, so this is safe on a 1-thread pool and
  /// safe to call from inside a pool task (nested ParallelFor): the caller
  /// waits only for helper tasks that actually started running — helpers
  /// still sitting in the queue when the range is exhausted are skipped, so
  /// no thread ever blocks on work that only it could run.
  /// If any fn(i) throws, remaining iterations are abandoned, every started
  /// helper is waited for, and the *first* exception is rethrown to the
  /// caller — no task touches `fn` after the call returns and failures are
  /// never silently dropped (the serving path relies on this to fail loudly).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace predtop::util

#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace predtop::util {

double Mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double Min(std::span<const double> xs) noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return m;
}

double Max(std::span<const double> xs) noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return m;
}

double Percentile(std::span<const double> xs, double p) {
  assert(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStats::Add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::StdDev() const noexcept { return std::sqrt(Variance()); }

double MeanRelativeErrorPct(std::span<const double> predicted,
                            std::span<const double> actual, double eps) {
  assert(predicted.size() == actual.size());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::fabs(actual[i]) < eps) continue;
    sum += std::fabs((predicted[i] - actual[i]) / actual[i]);
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * sum / static_cast<double>(n);
}

}  // namespace predtop::util

#pragma once
// Minimal leveled logging. Experiments narrate progress at Info level;
// PREDTOP_LOG=debug|info|warn|error|off controls verbosity.

#include <sstream>
#include <string>

namespace predtop::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current threshold; initialized from PREDTOP_LOG on first use.
[[nodiscard]] LogLevel CurrentLogLevel();
void SetLogLevel(LogLevel level);

namespace detail {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define PREDTOP_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(::predtop::util::CurrentLogLevel())) \
    ;                                                                   \
  else                                                                  \
    ::predtop::util::detail::LogLine(level)

#define PREDTOP_LOG_INFO PREDTOP_LOG(::predtop::util::LogLevel::kInfo)
#define PREDTOP_LOG_DEBUG PREDTOP_LOG(::predtop::util::LogLevel::kDebug)
#define PREDTOP_LOG_WARN PREDTOP_LOG(::predtop::util::LogLevel::kWarn)
#define PREDTOP_LOG_ERROR PREDTOP_LOG(::predtop::util::LogLevel::kError)

}  // namespace predtop::util

#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iomanip>

namespace predtop::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  if (!title_.empty()) os << title_ << '\n';
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      const bool quote = cells[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : cells[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cells[c];
      }
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string FormatF(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

}  // namespace predtop::util

#pragma once
// Wall-clock timing for the optimization-cost experiments (paper Fig. 10a
// measures predictor train/infer wall time).

#include <chrono>
#include <cstdint>

namespace predtop::util {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void Restart() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  [[nodiscard]] double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// ---- absolute monotonic deadlines ----
// Deadlines travel as absolute CLOCK_MONOTONIC microseconds (0 = none).
// steady_clock is per-host, which matches the cluster's deployment model
// (unix sockets / localhost tcp between processes on one machine); a
// cross-host deployment would need a relative-budget re-anchor at ingress.

/// Now on the steady clock, in microseconds.
[[nodiscard]] inline std::uint64_t SteadyNowUs() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Absolute deadline `budget_ms` from now; 0 (or negative) means no deadline.
[[nodiscard]] inline std::uint64_t DeadlineAfterMs(double budget_ms) noexcept {
  if (budget_ms <= 0.0) return 0;
  return SteadyNowUs() + static_cast<std::uint64_t>(budget_ms * 1000.0);
}

/// True when a nonzero deadline has passed (with `margin_us` of headroom:
/// a request that cannot finish inside the margin is already as good as
/// expired, so shedding it early saves the wasted forward).
[[nodiscard]] inline bool DeadlineExpired(std::uint64_t deadline_us,
                                          std::uint64_t margin_us = 0) noexcept {
  return deadline_us != 0 && SteadyNowUs() + margin_us >= deadline_us;
}

/// Milliseconds until the deadline; 0 when there is none, negative never
/// (an expired deadline clamps to a tiny positive budget so recv paths that
/// treat <=0 as "block forever" fail fast instead of hanging).
[[nodiscard]] inline double DeadlineRemainingMs(std::uint64_t deadline_us) noexcept {
  if (deadline_us == 0) return 0.0;
  const std::uint64_t now = SteadyNowUs();
  if (now >= deadline_us) return 0.001;
  return static_cast<double>(deadline_us - now) / 1000.0;
}

}  // namespace predtop::util

#pragma once
// Wall-clock timing for the optimization-cost experiments (paper Fig. 10a
// measures predictor train/infer wall time).

#include <chrono>

namespace predtop::util {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void Restart() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Restart().
  [[nodiscard]] double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace predtop::util

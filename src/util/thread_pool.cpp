#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace predtop::util {

namespace {

// Dispatch hook shared by all pools. The common case is "no hook", so probes
// are a single relaxed atomic load; installation swaps a shared_ptr under a
// mutex so a worker mid-call keeps a live copy while the hook is replaced.
std::mutex g_task_hook_mutex;
std::shared_ptr<const std::function<void()>> g_task_hook;
std::atomic<bool> g_task_hook_set{false};

void RunTaskHook() {
  if (!g_task_hook_set.load(std::memory_order_acquire)) return;
  std::shared_ptr<const std::function<void()>> hook;
  {
    const std::scoped_lock lock(g_task_hook_mutex);
    hook = g_task_hook;
  }
  if (hook) (*hook)();
}

}  // namespace

void ThreadPool::SetTaskHook(std::function<void()> hook) {
  const std::scoped_lock lock(g_task_hook_mutex);
  if (hook) {
    g_task_hook = std::make_shared<const std::function<void()>>(std::move(hook));
    g_task_hook_set.store(true, std::memory_order_release);
  } else {
    g_task_hook.reset();
    g_task_hook_set.store(false, std::memory_order_release);
  }
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTaskHook();
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  // All loop state lives in a shared block that helper tasks keep alive, so
  // a helper that only gets scheduled after the caller has returned (e.g. a
  // nested call drained the whole range itself) finds `open == false` and
  // returns without touching `fn` or the caller's stack. The caller waits
  // only for helpers that actually *started* (they run on other workers and
  // make progress without us), never for queued-but-unstarted ones — that
  // blocking join is what deadlocked nested ParallelFor calls: every worker
  // sat in f.get() on helper tasks no thread was left to run.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::mutex mutex;
    std::condition_variable done_cv;
    int active = 0;            // helpers inside the loop (guarded by mutex)
    bool open = true;          // cleared when the caller is done (guarded by mutex)
    std::exception_ptr error;  // first failure only (guarded by mutex)
  };
  auto st = std::make_shared<State>();
  st->fn = &fn;
  st->n = n;

  const auto drain = [](State& s) {
    for (;;) {
      if (s.failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.n) return;
      try {
        (*s.fn)(i);
      } catch (...) {
        // Keep the first exception; later ones (often cascades of the same
        // root cause) are dropped once the loop is already failing.
        const std::scoped_lock lock(s.mutex);
        if (!s.error) s.error = std::current_exception();
        s.failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    Enqueue([st, drain] {
      {
        const std::scoped_lock lock(st->mutex);
        if (!st->open) return;  // stale task: the loop is already over
        ++st->active;
      }
      drain(*st);
      {
        const std::scoped_lock lock(st->mutex);
        --st->active;
      }
      st->done_cv.notify_all();
    });
  }

  drain(*st);  // the caller works too

  std::exception_ptr error;
  {
    std::unique_lock lock(st->mutex);
    st->open = false;  // unstarted helpers become no-ops instead of work we wait on
    st->done_cv.wait(lock, [&] { return st->active == 0; });
    error = st->error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace predtop::util

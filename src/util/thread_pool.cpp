#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace predtop::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        // Keep the first exception; later ones (often cascades of the same
        // root cause) are dropped once the loop is already failing.
        const std::scoped_lock lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(Submit(drain));
  drain();  // the caller works too
  // Join every helper before rethrowing: no task may outlive the call and
  // touch captured state after the caller has unwound.
  for (auto& f : futures) f.get();
  if (error) std::rethrow_exception(error);
}

}  // namespace predtop::util

#pragma once
// Small statistics helpers used by the experiment harnesses (MRE tables,
// mean/stddev summaries per paper Figs. 8-9) and by tests.

#include <cstddef>
#include <span>
#include <vector>

namespace predtop::util {

/// Arithmetic mean; 0 for an empty range.
[[nodiscard]] double Mean(std::span<const double> xs) noexcept;

/// Population standard deviation; 0 for fewer than 2 elements.
[[nodiscard]] double StdDev(std::span<const double> xs) noexcept;

[[nodiscard]] double Min(std::span<const double> xs) noexcept;
[[nodiscard]] double Max(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
[[nodiscard]] double Percentile(std::span<const double> xs, double p);

/// Numerically stable streaming mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x) noexcept;
  [[nodiscard]] std::size_t Count() const noexcept { return n_; }
  [[nodiscard]] double Mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double Variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double StdDev() const noexcept;
  [[nodiscard]] double Min() const noexcept { return min_; }
  [[nodiscard]] double Max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean relative error in percent (paper Eqn. 5):
///   MRE = 100/N * sum_i |(pred_i - true_i) / true_i|.
/// Entries with |true| < eps are skipped to avoid division blow-up.
[[nodiscard]] double MeanRelativeErrorPct(std::span<const double> predicted,
                                          std::span<const double> actual,
                                          double eps = 1e-12);

}  // namespace predtop::util

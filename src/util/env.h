#pragma once
// Environment-variable configuration for experiment harnesses. Experiments
// default to sizes that finish quickly on a laptop; PREDTOP_FULL=1 switches
// to the paper-scale grid, and individual knobs override specific sizes.

#include <optional>
#include <string>
#include <vector>

namespace predtop::util {

[[nodiscard]] std::optional<std::string> EnvString(const char* name);
[[nodiscard]] long EnvInt(const char* name, long fallback);
[[nodiscard]] double EnvDouble(const char* name, double fallback);
[[nodiscard]] bool EnvBool(const char* name, bool fallback);

/// Parse a comma-separated list of integers ("10,30,50,80"); returns
/// `fallback` when unset or unparsable.
[[nodiscard]] std::vector<int> EnvIntList(const char* name, std::vector<int> fallback);

}  // namespace predtop::util

#include "util/env.h"

#include <cstdlib>
#include <sstream>

namespace predtop::util {

std::optional<std::string> EnvString(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

long EnvInt(const char* name, long fallback) {
  const auto s = EnvString(name);
  if (!s) return fallback;
  char* end = nullptr;
  const long v = std::strtol(s->c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const auto s = EnvString(name);
  if (!s) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

bool EnvBool(const char* name, bool fallback) {
  const auto s = EnvString(name);
  if (!s) return fallback;
  return *s == "1" || *s == "true" || *s == "on" || *s == "yes";
}

std::vector<int> EnvIntList(const char* name, std::vector<int> fallback) {
  const auto s = EnvString(name);
  if (!s) return fallback;
  std::vector<int> out;
  std::stringstream ss(*s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      out.push_back(std::stoi(item));
    } catch (...) {
      return fallback;
    }
  }
  return out.empty() ? fallback : out;
}

}  // namespace predtop::util

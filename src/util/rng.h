#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng so that every experiment
// (stage sampling, weight init, data splits, simulator noise) is exactly
// reproducible from a single seed. The generator is xoshiro256**, seeded via
// splitmix64 as recommended by its authors.

#include <cstdint>
#include <span>
#include <vector>

namespace predtop::util {

/// Stateless 64-bit mixer; used for seeding and for hashing small keys into
/// per-entity deterministic values (e.g. per-op efficiency jitter).
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** PRNG. Small, fast, and good enough for Monte-Carlo style
/// experiment sampling; not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { Reseed(seed); }

  void Reseed(std::uint64_t seed) noexcept;

  /// Uniform in [0, 2^64).
  std::uint64_t NextU64() noexcept;

  /// Uniform in [0, n). Requires n > 0.
  std::uint64_t NextBelow(std::uint64_t n) noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double Normal() noexcept;

  /// Normal with given mean / stddev.
  double Normal(double mean, double stddev) noexcept;

  /// Lognormal such that the *median* of the distribution is `median` and
  /// log-space sigma is `sigma`. Used for multiplicative measurement noise.
  double LogNormal(double median, double sigma) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices from [0, n), in random order. Requires k <= n.
  [[nodiscard]] std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for parallel-safe sub-streams).
  [[nodiscard]] Rng Fork() noexcept { return Rng(NextU64() ^ 0xa02e1bd659bb2c1fULL); }

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace predtop::util

#pragma once
// ASCII table / CSV emission for the benchmark harnesses. Every experiment
// binary prints its rows through TablePrinter so the output mirrors the
// paper's tables and stays machine-parsable (optional CSV sink).

#include <ostream>
#include <string>
#include <vector>

namespace predtop::util {

/// Column-aligned ASCII table with an optional title row.
///
/// Usage:
///   TablePrinter t({"# of Samples", "GCN", "GAT", "Tran"});
///   t.AddRow({"80%", "1.88", "4.56", "2.33"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void SetTitle(std::string title) { title_ = std::move(title); }
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t RowCount() const noexcept { return rows_.size(); }

  void Print(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers for table cells.
[[nodiscard]] std::string FormatF(double v, int precision = 2);
/// Seconds with adaptive unit (us / ms / s).
[[nodiscard]] std::string FormatSeconds(double seconds);

}  // namespace predtop::util

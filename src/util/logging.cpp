#include "util/logging.h"

#include <atomic>
#include <cstdio>

#include "util/env.h"

namespace predtop::util {

namespace {

LogLevel ParseLevel(const std::string& s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{[] {
    const auto env = EnvString("PREDTOP_LOG");
    return static_cast<int>(env ? ParseLevel(*env) : LogLevel::kInfo);
  }()};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

LogLevel CurrentLogLevel() { return static_cast<LogLevel>(LevelStore().load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) { LevelStore().store(static_cast<int>(level), std::memory_order_relaxed); }

namespace detail {
void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[predtop %s] %s\n", LevelTag(level), message.c_str());
}
}  // namespace detail

}  // namespace predtop::util

#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace predtop::util {

namespace {
constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::Reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) {
    sm = SplitMix64(sm);
    lane = sm;
  }
  has_cached_normal_ = false;
}

std::uint64_t Rng::NextU64() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() noexcept {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) noexcept {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double median, double sigma) noexcept {
  return median * std::exp(sigma * Normal());
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: only the first k slots need to be finalized.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(NextBelow(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace predtop::util

#include "sim/cost_model.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/rng.h"

namespace predtop::sim {

namespace {

using ir::OpType;

bool IsDotLike(OpType op) noexcept {
  return op == OpType::kDot || op == OpType::kBatchedDot || op == OpType::kConv2d;
}

}  // namespace

OpCostModel::OpCostModel(DeviceSpec device, std::uint64_t quirk_seed) noexcept
    : device_(std::move(device)), quirk_seed_(quirk_seed) {}

double OpCostModel::PeakFlops(ir::DType dtype) const noexcept {
  switch (dtype) {
    case ir::DType::kF16:
    case ir::DType::kBF16:
      return device_.peak_tflops_f16 * 1e12;
    default:
      return device_.peak_tflops_f32 * 1e12;
  }
}

double OpCostModel::Efficiency(const ir::Equation& eqn, std::int64_t out_elems) const noexcept {
  double eff;
  if (IsDotLike(eqn.op)) {
    // GEMM utilization: good baseline, degraded by wave quantization (small
    // outputs under-fill the SMs) and tile quantization (odd contraction
    // sizes hurt tensor-core tiling).
    eff = 0.62;
    const double wave = static_cast<double>(out_elems) /
                        (static_cast<double>(out_elems) + 4e5);
    eff *= 0.35 + 0.65 * wave;
    const std::int64_t k = std::max<std::int64_t>(1, eqn.contraction_dim);
    if (k % 64 != 0) eff *= 0.82;
  } else {
    eff = 0.80;  // bandwidth-bound kernels run close to streaming efficiency
  }
  // Deterministic per-(op, size-class) quirk: stands in for kernel selection
  // effects; size class is the log2 bucket of the output size.
  const auto size_class = static_cast<std::uint64_t>(
      std::bit_width(static_cast<std::uint64_t>(std::max<std::int64_t>(1, out_elems))));
  const std::uint64_t h = util::SplitMix64(
      quirk_seed_ ^ (static_cast<std::uint64_t>(eqn.op) * 0x9e37ULL + size_class));
  const double jitter = 0.85 + 0.30 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return eff * jitter;
}

double OpCostModel::EquationSeconds(const ir::StageProgram& program, const ir::Equation& eqn,
                                    double flop_scale, double byte_scale) const {
  const std::int64_t flops = ir::EquationFlops(program, eqn);
  const std::int64_t bytes = ir::EquationBytes(program, eqn);
  const ir::TensorSpec& result = program.value(eqn.result).spec;
  const double eff = Efficiency(eqn, result.NumElements());

  const double compute_s =
      flops > 0 ? static_cast<double>(flops) * flop_scale /
                      (PeakFlops(result.dtype) * eff)
                : 0.0;
  // Memory-bound floor: even pure data-movement ops (gather, transpose)
  // stream their bytes through HBM.
  const double stream_eff = IsDotLike(eqn.op) ? 1.0 : eff;
  const double memory_s = static_cast<double>(bytes) * byte_scale /
                          (device_.hbm_gbps * 1e9 * stream_eff);
  return std::max(compute_s, memory_s) + device_.kernel_launch_us * 1e-6;
}

double OpCostModel::TrainingFactor(ir::OpType op) noexcept {
  switch (op) {
    case OpType::kDot:
    case OpType::kBatchedDot:
    case OpType::kConv2d:
      return 3.0;  // forward GEMM + dX GEMM + dW GEMM
    case OpType::kTopK:
    case OpType::kOneHot:
      return 1.0;  // routing decisions are not differentiated
    case OpType::kNone:
      return 0.0;
    default:
      return 2.0;  // forward + one backward pass over the same data
  }
}

double OpCostModel::WeightUpdateSeconds(std::int64_t literal_bytes) const noexcept {
  // Adam update streams parameters, gradients and two moments: ~6x the
  // parameter bytes read+written.
  return 6.0 * static_cast<double>(literal_bytes) / (device_.hbm_gbps * 1e9);
}

}  // namespace predtop::sim

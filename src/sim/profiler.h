#pragma once
// Profiling substitute (paper §VI phase 1): wraps a stage's true simulated
// latency in measurement noise and charges a modeled wall-clock cost for
// what real profiling would spend — stage compilation, data transfer, and
// warmup + timed iterations. The cost ledger drives the optimization-cost
// comparison of paper Fig. 10a.

#include <cstdint>

#include "util/rng.h"

namespace predtop::sim {

struct ProfilerConfig {
  std::int32_t warmup_iters = 2;
  std::int32_t measure_iters = 5;
  /// Modeled intra-op-pass + XLA compile cost per stage: base + per-equation.
  double compile_base_s = 0.8;
  double compile_per_equation_s = 0.006;
  /// Weight allocation + input transfer per profiled stage.
  double setup_s = 0.4;
  /// Lognormal measurement-noise sigma (~1.5% run-to-run jitter).
  double noise_sigma = 0.015;
};

class Profiler {
 public:
  Profiler(ProfilerConfig config, std::uint64_t seed) noexcept
      : config_(config), rng_(seed) {}

  /// One profiling run: returns the noisy measured latency (median of the
  /// modeled timed iterations) and charges compile + execution cost.
  [[nodiscard]] double ProfileStage(double true_latency_s, std::int64_t num_equations);

  /// Noisy observation without charging cost (used to build evaluation
  /// ground truth).
  [[nodiscard]] double Observe(double true_latency_s);

  /// Accumulated modeled profiling cost in seconds.
  [[nodiscard]] double TotalCostSeconds() const noexcept { return total_cost_s_; }
  [[nodiscard]] std::int64_t StagesProfiled() const noexcept { return stages_profiled_; }

  void ResetLedger() noexcept {
    total_cost_s_ = 0.0;
    stages_profiled_ = 0;
  }

  [[nodiscard]] const ProfilerConfig& Config() const noexcept { return config_; }

 private:
  ProfilerConfig config_;
  util::Rng rng_;
  double total_cost_s_ = 0.0;
  std::int64_t stages_profiled_ = 0;
};

}  // namespace predtop::sim

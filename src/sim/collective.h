#pragma once
// Analytical communication model: ring-based collectives over a device mesh
// (the standard alpha-beta model used by Alpa's cost estimator). Bandwidth
// is the bottleneck link of the mesh: NVLink within a node, Ethernet when
// the mesh spans nodes.

#include "sim/cluster.h"

namespace predtop::sim {

class CollectiveModel {
 public:
  CollectiveModel(const ClusterSpec& cluster, Mesh mesh) noexcept;

  /// Effective per-direction bandwidth (bytes/second) of the bottleneck link.
  [[nodiscard]] double BottleneckBandwidth() const noexcept { return bandwidth_bps_; }
  [[nodiscard]] double LinkLatencySeconds() const noexcept { return latency_s_; }
  [[nodiscard]] std::int32_t NumDevices() const noexcept { return devices_; }

  /// Ring all-reduce of `bytes` across `participants` devices.
  [[nodiscard]] double AllReduceSeconds(double bytes, std::int32_t participants) const noexcept;
  /// Ring all-gather producing `bytes` total on each device.
  [[nodiscard]] double AllGatherSeconds(double bytes, std::int32_t participants) const noexcept;
  /// Ring reduce-scatter of `bytes`.
  [[nodiscard]] double ReduceScatterSeconds(double bytes, std::int32_t participants) const noexcept;
  /// Point-to-point transfer.
  [[nodiscard]] double SendRecvSeconds(double bytes) const noexcept;

 private:
  std::int32_t devices_;
  double bandwidth_bps_;
  double latency_s_;
};

}  // namespace predtop::sim

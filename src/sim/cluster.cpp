#include "sim/cluster.h"

namespace predtop::sim {

ClusterSpec Platform1() {
  ClusterSpec spec;
  spec.name = "Platform1-A40";
  spec.device = DeviceSpec{
      .name = "NVIDIA A40",
      .peak_tflops_f16 = 149.7,  // tensor cores, dense
      .peak_tflops_f32 = 37.4,
      .hbm_gbps = 696.0,
      .kernel_launch_us = 6.0,
      .memory_gib = 48,
  };
  spec.interconnect = InterconnectSpec{
      .intra_node_gbps = 56.25,  // half of the 112.5 GB/s bidirectional NVLink
      .intra_node_latency_us = 5.0,
      .inter_node_gbps = 1.25,  // (unused: single node)
      .inter_node_latency_us = 50.0,
  };
  spec.num_nodes = 1;
  spec.gpus_per_node = 2;
  return spec;
}

ClusterSpec Platform2() {
  ClusterSpec spec;
  spec.name = "Platform2-A5500";
  spec.device = DeviceSpec{
      .name = "NVIDIA RTX A5500",
      .peak_tflops_f16 = 117.2,
      .peak_tflops_f32 = 34.1,
      .hbm_gbps = 768.0,
      .kernel_launch_us = 6.0,
      .memory_gib = 24,
  };
  spec.interconnect = InterconnectSpec{
      .intra_node_gbps = 56.25,
      .intra_node_latency_us = 5.0,
      .inter_node_gbps = 1.25,  // 10 GbE
      .inter_node_latency_us = 50.0,
  };
  spec.num_nodes = 2;
  spec.gpus_per_node = 2;
  return spec;
}

std::vector<Mesh> PaperMeshes(const ClusterSpec& cluster) {
  const std::vector<Mesh> candidates{{1, 1}, {1, 2}, {2, 2}};
  std::vector<Mesh> out;
  for (const Mesh& m : candidates) {
    if (m.FitsIn(cluster)) out.push_back(m);
  }
  return out;
}

}  // namespace predtop::sim

#include "sim/profiler.h"

namespace predtop::sim {

double Profiler::ProfileStage(double true_latency_s, std::int64_t num_equations) {
  const double compile_s =
      config_.compile_base_s + config_.compile_per_equation_s * static_cast<double>(num_equations);
  const double run_s =
      static_cast<double>(config_.warmup_iters + config_.measure_iters) * true_latency_s;
  total_cost_s_ += compile_s + config_.setup_s + run_s;
  ++stages_profiled_;
  return Observe(true_latency_s);
}

double Profiler::Observe(double true_latency_s) {
  return rng_.LogNormal(true_latency_s, config_.noise_sigma);
}

}  // namespace predtop::sim

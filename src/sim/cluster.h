#pragma once
// Hardware model of the paper's two experimental platforms (§VII-A). Since
// no physical GPUs are available, these specs drive an analytical simulator
// that plays the role of the real cluster: Platform 1 (one node, 2x NVIDIA
// A40, NVLink) and Platform 2 (two nodes, 2x RTX A5500 each, NVLink within
// a node, 10 GbE across nodes).

#include <cstdint>
#include <string>
#include <vector>

namespace predtop::sim {

struct DeviceSpec {
  std::string name;
  double peak_tflops_f16 = 0.0;  // tensor-core half-precision throughput
  double peak_tflops_f32 = 0.0;
  double hbm_gbps = 0.0;            // device memory bandwidth (GB/s)
  double kernel_launch_us = 0.0;    // fixed per-kernel overhead
  std::int64_t memory_gib = 0;
};

struct InterconnectSpec {
  double intra_node_gbps = 0.0;     // effective per-direction NVLink bandwidth
  double intra_node_latency_us = 0.0;
  double inter_node_gbps = 0.0;     // Ethernet bandwidth
  double inter_node_latency_us = 0.0;
};

struct ClusterSpec {
  std::string name;
  DeviceSpec device;
  InterconnectSpec interconnect;
  std::int32_t num_nodes = 1;
  std::int32_t gpus_per_node = 1;

  [[nodiscard]] std::int32_t TotalDevices() const noexcept { return num_nodes * gpus_per_node; }
};

/// Device mesh a stage executes on (paper Tbl. II).
struct Mesh {
  std::int32_t num_nodes = 1;
  std::int32_t gpus_per_node = 1;

  [[nodiscard]] std::int32_t NumDevices() const noexcept { return num_nodes * gpus_per_node; }
  [[nodiscard]] bool SpansNodes() const noexcept { return num_nodes > 1; }
  [[nodiscard]] bool FitsIn(const ClusterSpec& cluster) const noexcept {
    return num_nodes <= cluster.num_nodes && gpus_per_node <= cluster.gpus_per_node;
  }
  bool operator==(const Mesh&) const = default;
};

/// Platform 1: Dell R750XA, 2x NVIDIA A40 (48 GiB, 696 GB/s), NVLink.
[[nodiscard]] ClusterSpec Platform1();
/// Platform 2: 2x Dell 5820, each 2x RTX A5500 (24 GiB, 768 GB/s), NVLink
/// within a node, 10 GbE between nodes.
[[nodiscard]] ClusterSpec Platform2();

/// The mesh configurations of paper Tbl. II that fit in `cluster`:
/// (1,1), (1,2), (2,2).
[[nodiscard]] std::vector<Mesh> PaperMeshes(const ClusterSpec& cluster);

}  // namespace predtop::sim

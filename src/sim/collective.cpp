#include "sim/collective.h"

namespace predtop::sim {

CollectiveModel::CollectiveModel(const ClusterSpec& cluster, Mesh mesh) noexcept
    : devices_(mesh.NumDevices()) {
  const auto& net = cluster.interconnect;
  if (mesh.SpansNodes()) {
    bandwidth_bps_ = net.inter_node_gbps * 1e9;
    latency_s_ = net.inter_node_latency_us * 1e-6;
  } else {
    bandwidth_bps_ = net.intra_node_gbps * 1e9;
    latency_s_ = net.intra_node_latency_us * 1e-6;
  }
}

double CollectiveModel::AllReduceSeconds(double bytes, std::int32_t participants) const noexcept {
  if (participants <= 1 || bytes <= 0.0) return 0.0;
  const double p = participants;
  return 2.0 * (p - 1.0) / p * bytes / bandwidth_bps_ + 2.0 * (p - 1.0) * latency_s_;
}

double CollectiveModel::AllGatherSeconds(double bytes, std::int32_t participants) const noexcept {
  if (participants <= 1 || bytes <= 0.0) return 0.0;
  const double p = participants;
  return (p - 1.0) / p * bytes / bandwidth_bps_ + (p - 1.0) * latency_s_;
}

double CollectiveModel::ReduceScatterSeconds(double bytes,
                                             std::int32_t participants) const noexcept {
  return AllGatherSeconds(bytes, participants);
}

double CollectiveModel::SendRecvSeconds(double bytes) const noexcept {
  if (bytes <= 0.0) return 0.0;
  return bytes / bandwidth_bps_ + latency_s_;
}

}  // namespace predtop::sim

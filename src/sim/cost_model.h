#pragma once
// Per-operator device cost model: a roofline (compute vs memory bandwidth)
// with realistic second-order effects — kernel-launch overhead, wave/tile
// quantization, and deterministic per-(op, size-class) efficiency quirks.
// The quirks are what make stage latency a non-trivial learning target for
// the black-box predictors, standing in for the kernel-selection and
// scheduling idiosyncrasies of real GPUs.

#include <cstdint>

#include "ir/program.h"
#include "sim/cluster.h"

namespace predtop::sim {

class OpCostModel {
 public:
  /// `quirk_seed` keys the deterministic efficiency perturbations; derive it
  /// from the platform so the two platforms exhibit different quirks.
  OpCostModel(DeviceSpec device, std::uint64_t quirk_seed) noexcept;

  /// Forward execution time of one equation on one device, with its work
  /// scaled by `flop_scale` / `byte_scale` (sharding divides these).
  [[nodiscard]] double EquationSeconds(const ir::StageProgram& program, const ir::Equation& eqn,
                                       double flop_scale = 1.0, double byte_scale = 1.0) const;

  /// Multiplier turning forward op time into its contribution to a training
  /// iteration (forward + backward): ~3x for GEMMs (one forward plus two
  /// backward GEMMs), ~2x for memory-bound ops, 1x for non-differentiated
  /// routing ops.
  [[nodiscard]] static double TrainingFactor(ir::OpType op) noexcept;

  /// Optimizer-update time for a stage's parameters (bytes of weights).
  [[nodiscard]] double WeightUpdateSeconds(std::int64_t literal_bytes) const noexcept;

  [[nodiscard]] const DeviceSpec& Device() const noexcept { return device_; }

 private:
  [[nodiscard]] double PeakFlops(ir::DType dtype) const noexcept;
  [[nodiscard]] double Efficiency(const ir::Equation& eqn, std::int64_t out_elems) const noexcept;

  DeviceSpec device_;
  std::uint64_t quirk_seed_;
};

}  // namespace predtop::sim

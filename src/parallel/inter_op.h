#pragma once
// Inter-operator (pipeline) optimizer — the Alpa-style dynamic program that
// slices the model's layers into contiguous stages, assigns each stage a
// submesh, and minimizes the 1F1B iteration latency (Eqn. 4). The optimizer
// is agnostic to where stage latencies come from: a profiling oracle (vanilla
// Alpa) or a PredTOP predictor (paper §VI phase 3).
//
// The search runs in two phases:
//   1. fill the L(L+1)/2 x M stage-latency table — every (contiguous layer
//      slice, submesh) pair is queried once. This is the expensive phase and
//      can be fanned out across a util::ThreadPool or delegated wholesale to
//      a batched oracle (e.g. serve::PredictionService::PredictMany, which
//      coalesces duplicates and parallelizes the model forwards itself);
//   2. the t_max-enumeration DP over the filled table, with stage count as
//      an explicit DP dimension g[k][d][s] so a max_stages bound prunes
//      exactly, and with candidate pruning: candidates ascend, and any plan
//      first reachable at bottleneck t costs at least t + (B-1)*t, so the
//      enumeration stops once that lower bound reaches the incumbent.

#include <functional>
#include <span>

#include "parallel/plan.h"
#include "util/thread_pool.h"

namespace predtop::parallel {

/// Returns the *optimal intra-stage* per-microbatch latency of a stage on a
/// mesh (already minimized over parallel configurations), plus the config
/// that achieves it. Implementations may be backed by simulation/profiling
/// or by a learned predictor.
struct StageLatencyResult {
  double latency_s = 0.0;
  ParallelConfig config;
  /// True when the latency did not come from the primary (learned) oracle —
  /// e.g. serve::ServingOracle degraded to its analytical fallback after a
  /// missing model, deadline overrun, or non-finite prediction. Carried into
  /// the chosen plan's stages so callers can report the degraded fraction.
  bool degraded = false;
};
using StageLatencyOracle =
    std::function<StageLatencyResult(ir::StageSlice, sim::Mesh)>;

/// One cell of the stage-latency table: layers `slice` on submesh `mesh`.
struct StageQuery {
  ir::StageSlice slice;
  sim::Mesh mesh;
};

/// Batched oracle: must return one result per query, in query order. Lets a
/// serving backend dedupe repeated stages and fan the distinct misses out
/// across its own thread pool (see serve::ServingOracle::AsBatchOracle).
using StageLatencyBatchOracle =
    std::function<std::vector<StageLatencyResult>(std::span<const StageQuery>)>;

struct InterOpOptions {
  std::int32_t num_layers = 0;
  std::int32_t num_microbatches = 8;
  /// Candidate submeshes; defaults to the paper's Tbl. II meshes that fit.
  std::vector<sim::Mesh> submeshes;
  /// Upper bound on the number of pipeline stages (0 = no bound beyond the
  /// structural min(num_layers, total devices) cap).
  std::int32_t max_stages = 0;
};

class InterOpOptimizer {
 public:
  InterOpOptimizer(const sim::ClusterSpec& cluster, InterOpOptions options);

  /// Run the t_max-enumeration DP and return the best pipeline plan, filling
  /// the stage-latency table serially on the calling thread.
  [[nodiscard]] PipelinePlan Optimize(const StageLatencyOracle& oracle) const;

  /// Same, but fan the table fill out across `pool`. The oracle is invoked
  /// concurrently and must be thread-safe (a serve::ServingOracle is; the
  /// memoizing core::PlanSearch oracles are not).
  [[nodiscard]] PipelinePlan Optimize(const StageLatencyOracle& oracle,
                                      util::ThreadPool& pool) const;

  /// Same, but hand the whole table to one batched-oracle call, which may
  /// dedupe and parallelize internally.
  [[nodiscard]] PipelinePlan Optimize(const StageLatencyBatchOracle& oracle) const;

  /// Evaluate a fixed plan's iteration latency under a (possibly different)
  /// oracle — used to score predicted plans against ground truth.
  [[nodiscard]] double EvaluatePlan(const PipelinePlan& plan,
                                    const StageLatencyOracle& oracle) const;

  [[nodiscard]] const InterOpOptions& Options() const noexcept { return options_; }

 private:
  /// Every (slice, mesh) cell, in table order: queries[SliceIndex(i,j)*M + m].
  [[nodiscard]] std::vector<StageQuery> BuildQueries() const;
  /// Phase 2: the pruned DP over a filled stage-latency table.
  [[nodiscard]] PipelinePlan OptimizeFromResults(
      std::span<const StageLatencyResult> results) const;

  sim::ClusterSpec cluster_;
  InterOpOptions options_;
};

}  // namespace predtop::parallel

#pragma once
// Inter-operator (pipeline) optimizer — the Alpa-style dynamic program that
// slices the model's layers into contiguous stages, assigns each stage a
// submesh, and minimizes the 1F1B iteration latency (Eqn. 4). The optimizer
// is agnostic to where stage latencies come from: a profiling oracle (vanilla
// Alpa) or a PredTOP predictor (paper §VI phase 3).

#include <functional>
#include <span>

#include "parallel/plan.h"

namespace predtop::parallel {

/// Returns the *optimal intra-stage* per-microbatch latency of a stage on a
/// mesh (already minimized over parallel configurations), plus the config
/// that achieves it. Implementations may be backed by simulation/profiling
/// or by a learned predictor.
struct StageLatencyResult {
  double latency_s = 0.0;
  ParallelConfig config;
};
using StageLatencyOracle =
    std::function<StageLatencyResult(ir::StageSlice, sim::Mesh)>;

struct InterOpOptions {
  std::int32_t num_layers = 0;
  std::int32_t num_microbatches = 8;
  /// Candidate submeshes; defaults to the paper's Tbl. II meshes that fit.
  std::vector<sim::Mesh> submeshes;
  /// Upper bound on the number of pipeline stages (0 = no bound).
  std::int32_t max_stages = 0;
};

class InterOpOptimizer {
 public:
  InterOpOptimizer(const sim::ClusterSpec& cluster, InterOpOptions options);

  /// Run the t_max-enumeration DP and return the best pipeline plan.
  [[nodiscard]] PipelinePlan Optimize(const StageLatencyOracle& oracle) const;

  /// Evaluate a fixed plan's iteration latency under a (possibly different)
  /// oracle — used to score predicted plans against ground truth.
  [[nodiscard]] double EvaluatePlan(const PipelinePlan& plan,
                                    const StageLatencyOracle& oracle) const;

  [[nodiscard]] const InterOpOptions& Options() const noexcept { return options_; }

 private:
  sim::ClusterSpec cluster_;
  InterOpOptions options_;
};

}  // namespace predtop::parallel

#include "parallel/inter_op.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "parallel/pipeline_model.h"

namespace predtop::parallel {

InterOpOptimizer::InterOpOptimizer(const sim::ClusterSpec& cluster, InterOpOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  if (options_.num_layers <= 0) {
    throw std::invalid_argument("InterOpOptimizer: num_layers must be positive");
  }
  if (options_.submeshes.empty()) {
    options_.submeshes = sim::PaperMeshes(cluster_);
  }
  for (const sim::Mesh& m : options_.submeshes) {
    if (!m.FitsIn(cluster_)) {
      throw std::invalid_argument("InterOpOptimizer: submesh does not fit in cluster");
    }
  }
}

PipelinePlan InterOpOptimizer::Optimize(const StageLatencyOracle& oracle) const {
  const std::int32_t layer_count = options_.num_layers;
  const std::int32_t device_count = cluster_.TotalDevices();
  const auto mesh_count = static_cast<std::int32_t>(options_.submeshes.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Stage latency table: lat[i][j][m] for layers [i, j) on submesh m.
  const auto slice_index = [&](std::int32_t i, std::int32_t j) {
    return (i * (2 * layer_count - i + 1)) / 2 + (j - i - 1);
  };
  const std::int32_t num_slices = layer_count * (layer_count + 1) / 2;
  std::vector<double> lat(static_cast<std::size_t>(num_slices) * mesh_count, kInf);
  std::vector<ParallelConfig> cfg(static_cast<std::size_t>(num_slices) * mesh_count);
  std::vector<double> tmax_candidates;
  for (std::int32_t i = 0; i < layer_count; ++i) {
    for (std::int32_t j = i + 1; j <= layer_count; ++j) {
      for (std::int32_t m = 0; m < mesh_count; ++m) {
        const StageLatencyResult r =
            oracle(ir::StageSlice{i, j}, options_.submeshes[static_cast<std::size_t>(m)]);
        const std::size_t idx =
            static_cast<std::size_t>(slice_index(i, j)) * mesh_count + static_cast<std::size_t>(m);
        lat[idx] = r.latency_s;
        cfg[idx] = r.config;
        if (std::isfinite(r.latency_s)) tmax_candidates.push_back(r.latency_s);
      }
    }
  }
  std::sort(tmax_candidates.begin(), tmax_candidates.end());
  tmax_candidates.erase(std::unique(tmax_candidates.begin(), tmax_candidates.end()),
                        tmax_candidates.end());

  PipelinePlan best;
  best.num_microbatches = options_.num_microbatches;

  // Alpa's t_max enumeration: for each bottleneck bound, minimize the sum of
  // stage latencies with a DP over (layers covered, devices used).
  struct Choice {
    std::int32_t prev_layer = -1;
    std::int32_t prev_devices = -1;
    std::int32_t mesh = -1;
  };
  const auto state = [&](std::int32_t k, std::int32_t d) {
    return static_cast<std::size_t>(k) * (device_count + 1) + static_cast<std::size_t>(d);
  };

  for (const double tmax : tmax_candidates) {
    std::vector<double> g(static_cast<std::size_t>(layer_count + 1) * (device_count + 1), kInf);
    std::vector<std::int32_t> stages_used(g.size(), 0);
    std::vector<Choice> choice(g.size());
    g[state(0, 0)] = 0.0;

    for (std::int32_t k = 0; k < layer_count; ++k) {
      for (std::int32_t d = 0; d <= device_count; ++d) {
        const double base = g[state(k, d)];
        if (!std::isfinite(base)) continue;
        if (options_.max_stages > 0 && stages_used[state(k, d)] >= options_.max_stages) continue;
        for (std::int32_t j = k + 1; j <= layer_count; ++j) {
          for (std::int32_t m = 0; m < mesh_count; ++m) {
            const std::int32_t dev =
                options_.submeshes[static_cast<std::size_t>(m)].NumDevices();
            if (d + dev > device_count) continue;
            const double t =
                lat[static_cast<std::size_t>(slice_index(k, j)) * mesh_count +
                    static_cast<std::size_t>(m)];
            if (!std::isfinite(t) || t > tmax) continue;
            const std::size_t next = state(j, d + dev);
            if (base + t < g[next]) {
              g[next] = base + t;
              stages_used[next] = stages_used[state(k, d)] + 1;
              choice[next] = Choice{k, d, m};
            }
          }
        }
      }
    }

    for (std::int32_t d = 1; d <= device_count; ++d) {
      const double total_sum = g[state(layer_count, d)];
      if (!std::isfinite(total_sum)) continue;
      const double iteration =
          total_sum + static_cast<double>(options_.num_microbatches - 1) * tmax;
      if (iteration >= best.iteration_latency_s) continue;
      // Reconstruct the stage chain.
      PipelinePlan plan;
      plan.num_microbatches = options_.num_microbatches;
      std::int32_t k = layer_count, dd = d;
      std::vector<double> stage_lats;
      while (k > 0) {
        const Choice& c = choice[state(k, dd)];
        const std::size_t idx = static_cast<std::size_t>(slice_index(c.prev_layer, k)) *
                                    mesh_count +
                                static_cast<std::size_t>(c.mesh);
        PipelineStageChoice stage;
        stage.slice = ir::StageSlice{c.prev_layer, k};
        stage.mesh = options_.submeshes[static_cast<std::size_t>(c.mesh)];
        stage.config = cfg[idx];
        stage.latency_s = lat[idx];
        stage_lats.push_back(stage.latency_s);
        plan.stages.push_back(stage);
        k = c.prev_layer;
        dd = c.prev_devices;
      }
      std::reverse(plan.stages.begin(), plan.stages.end());
      std::reverse(stage_lats.begin(), stage_lats.end());
      // Score with the true bottleneck, not the bound.
      plan.iteration_latency_s =
          PipelineLatency(stage_lats, options_.num_microbatches);
      if (plan.iteration_latency_s < best.iteration_latency_s) best = std::move(plan);
    }
  }
  return best;
}

double InterOpOptimizer::EvaluatePlan(const PipelinePlan& plan,
                                      const StageLatencyOracle& oracle) const {
  std::vector<double> stage_lats;
  stage_lats.reserve(plan.stages.size());
  for (const PipelineStageChoice& stage : plan.stages) {
    stage_lats.push_back(oracle(stage.slice, stage.mesh).latency_s);
  }
  return PipelineLatency(stage_lats, plan.num_microbatches);
}

}  // namespace predtop::parallel

#include "parallel/inter_op.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "parallel/pipeline_model.h"

namespace predtop::parallel {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Candidates closer than this (relatively) collapse into one DP pass.
constexpr double kCandidateRelEps = 1e-12;

/// A stage latency must be a finite non-negative number to enter the DP; a
/// NaN or negative value from a misbehaving oracle (e.g. an untrained or
/// corrupted predictor) becomes +inf — "this cell is unusable" — instead of
/// poisoning candidate enumeration or the pipeline-latency arithmetic.
StageLatencyResult Sanitize(StageLatencyResult r) {
  if (!(r.latency_s >= 0.0) || !std::isfinite(r.latency_s)) r.latency_s = kInf;
  return r;
}

}  // namespace

InterOpOptimizer::InterOpOptimizer(const sim::ClusterSpec& cluster, InterOpOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  if (options_.num_layers <= 0) {
    throw std::invalid_argument("InterOpOptimizer: num_layers must be positive");
  }
  if (options_.submeshes.empty()) {
    options_.submeshes = sim::PaperMeshes(cluster_);
  }
  for (const sim::Mesh& m : options_.submeshes) {
    if (!m.FitsIn(cluster_)) {
      throw std::invalid_argument("InterOpOptimizer: submesh does not fit in cluster");
    }
  }
}

std::vector<StageQuery> InterOpOptimizer::BuildQueries() const {
  const std::int32_t layer_count = options_.num_layers;
  std::vector<StageQuery> queries;
  queries.reserve(static_cast<std::size_t>(layer_count) * (layer_count + 1) / 2 *
                  options_.submeshes.size());
  // Loop order matches SliceIndex(i, j) * mesh_count + m, so results land in
  // table order without a scatter step.
  for (std::int32_t i = 0; i < layer_count; ++i) {
    for (std::int32_t j = i + 1; j <= layer_count; ++j) {
      for (const sim::Mesh& mesh : options_.submeshes) {
        queries.push_back(StageQuery{ir::StageSlice{i, j}, mesh});
      }
    }
  }
  return queries;
}

PipelinePlan InterOpOptimizer::Optimize(const StageLatencyOracle& oracle) const {
  const std::vector<StageQuery> queries = BuildQueries();
  std::vector<StageLatencyResult> results(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    results[q] = Sanitize(oracle(queries[q].slice, queries[q].mesh));
  }
  return OptimizeFromResults(results);
}

PipelinePlan InterOpOptimizer::Optimize(const StageLatencyOracle& oracle,
                                        util::ThreadPool& pool) const {
  const std::vector<StageQuery> queries = BuildQueries();
  std::vector<StageLatencyResult> results(queries.size());
  pool.ParallelFor(queries.size(), [&](std::size_t q) {
    results[q] = Sanitize(oracle(queries[q].slice, queries[q].mesh));
  });
  return OptimizeFromResults(results);
}

PipelinePlan InterOpOptimizer::Optimize(const StageLatencyBatchOracle& oracle) const {
  const std::vector<StageQuery> queries = BuildQueries();
  std::vector<StageLatencyResult> results(oracle(queries));
  if (results.size() != queries.size()) {
    throw std::runtime_error("InterOpOptimizer: batch oracle returned " +
                             std::to_string(results.size()) + " results for " +
                             std::to_string(queries.size()) + " queries");
  }
  for (StageLatencyResult& r : results) r = Sanitize(r);
  return OptimizeFromResults(results);
}

PipelinePlan InterOpOptimizer::OptimizeFromResults(
    std::span<const StageLatencyResult> results) const {
  const std::int32_t layer_count = options_.num_layers;
  const std::int32_t device_count = cluster_.TotalDevices();
  const auto mesh_count = static_cast<std::int32_t>(options_.submeshes.size());
  const std::int32_t microbatches = std::max<std::int32_t>(1, options_.num_microbatches);

  const auto slice_index = [&](std::int32_t i, std::int32_t j) {
    return (i * (2 * layer_count - i + 1)) / 2 + (j - i - 1);
  };
  const auto table = [&](std::int32_t i, std::int32_t j, std::int32_t m) -> const
      StageLatencyResult& {
        return results[static_cast<std::size_t>(slice_index(i, j)) * mesh_count +
                       static_cast<std::size_t>(m)];
      };

  // Bottleneck candidates: every finite stage latency, ascending, with
  // near-equal values collapsed onto the *largest* of their group (so every
  // member still passes the t <= t_max filter of the group's DP pass; the
  // final score uses the true bottleneck, not the candidate).
  std::vector<double> tmax_candidates;
  for (const StageLatencyResult& r : results) {
    if (std::isfinite(r.latency_s)) tmax_candidates.push_back(r.latency_s);
  }
  std::sort(tmax_candidates.begin(), tmax_candidates.end());
  std::size_t kept = 0;
  for (const double t : tmax_candidates) {
    if (kept > 0 && t <= tmax_candidates[kept - 1] * (1.0 + kCandidateRelEps)) {
      tmax_candidates[kept - 1] = t;
    } else {
      tmax_candidates[kept++] = t;
    }
  }
  tmax_candidates.resize(kept);

  // Stage count is a DP dimension: g[k][d][s] = min sum of stage latencies
  // covering layers [0, k) with d devices in exactly s stages. The seed code
  // tracked a stages_used side table updated only when g improved, so a
  // cheaper-but-deeper path overwrote the count of a shallower one and the
  // max_stages check rejected feasible plans.
  const std::int32_t structural_cap = std::min(layer_count, device_count);
  const std::int32_t stage_cap = options_.max_stages > 0
                                     ? std::min(options_.max_stages, structural_cap)
                                     : structural_cap;

  struct Choice {
    std::int32_t prev_layer = -1;
    std::int32_t prev_devices = -1;
    std::int32_t mesh = -1;
  };
  const auto state = [&](std::int32_t k, std::int32_t d, std::int32_t s) {
    return (static_cast<std::size_t>(k) * (device_count + 1) + static_cast<std::size_t>(d)) *
               (stage_cap + 1) +
           static_cast<std::size_t>(s);
  };

  PipelinePlan best;
  best.num_microbatches = options_.num_microbatches;

  // Per-candidate DP state is allocated once and refilled — the lat/cfg
  // table and the candidate list are shared across all passes.
  std::vector<double> g(
      static_cast<std::size_t>(layer_count + 1) * (device_count + 1) * (stage_cap + 1), kInf);
  std::vector<Choice> choice(g.size());
  std::vector<std::int32_t> mesh_devices(static_cast<std::size_t>(mesh_count));
  for (std::int32_t m = 0; m < mesh_count; ++m) {
    mesh_devices[static_cast<std::size_t>(m)] =
        options_.submeshes[static_cast<std::size_t>(m)].NumDevices();
  }

  for (const double tmax : tmax_candidates) {
    // Any plan not already covered by a smaller candidate has bottleneck
    // exactly tmax, hence sum >= tmax and iteration >= tmax + (B-1)*tmax.
    if (static_cast<double>(microbatches) * tmax >= best.iteration_latency_s) break;

    std::fill(g.begin(), g.end(), kInf);
    g[state(0, 0, 0)] = 0.0;

    for (std::int32_t k = 0; k < layer_count; ++k) {
      for (std::int32_t d = 0; d <= device_count; ++d) {
        for (std::int32_t s = 0; s < stage_cap; ++s) {
          const double base = g[state(k, d, s)];
          if (!std::isfinite(base)) continue;
          for (std::int32_t j = k + 1; j <= layer_count; ++j) {
            for (std::int32_t m = 0; m < mesh_count; ++m) {
              const std::int32_t dev = mesh_devices[static_cast<std::size_t>(m)];
              if (d + dev > device_count) continue;
              const double t = table(k, j, m).latency_s;
              if (!std::isfinite(t) || t > tmax) continue;
              const std::size_t next = state(j, d + dev, s + 1);
              if (base + t < g[next]) {
                g[next] = base + t;
                choice[next] = Choice{k, d, m};
              }
            }
          }
        }
      }
    }

    for (std::int32_t d = 1; d <= device_count; ++d) {
      for (std::int32_t s = 1; s <= stage_cap; ++s) {
        const double total_sum = g[state(layer_count, d, s)];
        if (!std::isfinite(total_sum)) continue;
        const double iteration =
            total_sum + static_cast<double>(microbatches - 1) * tmax;
        if (iteration >= best.iteration_latency_s) continue;
        // Reconstruct the stage chain.
        PipelinePlan plan;
        plan.num_microbatches = options_.num_microbatches;
        std::int32_t k = layer_count, dd = d, ss = s;
        std::vector<double> stage_lats;
        while (k > 0) {
          const Choice& c = choice[state(k, dd, ss)];
          const StageLatencyResult& cell = table(c.prev_layer, k, c.mesh);
          PipelineStageChoice stage;
          stage.slice = ir::StageSlice{c.prev_layer, k};
          stage.mesh = options_.submeshes[static_cast<std::size_t>(c.mesh)];
          stage.config = cell.config;
          stage.latency_s = cell.latency_s;
          stage.degraded = cell.degraded;
          stage_lats.push_back(stage.latency_s);
          plan.stages.push_back(stage);
          k = c.prev_layer;
          dd = c.prev_devices;
          --ss;
        }
        std::reverse(plan.stages.begin(), plan.stages.end());
        std::reverse(stage_lats.begin(), stage_lats.end());
        // Score with the true bottleneck, not the bound.
        plan.iteration_latency_s =
            PipelineLatency(stage_lats, options_.num_microbatches);
        if (plan.iteration_latency_s < best.iteration_latency_s) best = std::move(plan);
      }
    }
  }
  return best;
}

double InterOpOptimizer::EvaluatePlan(const PipelinePlan& plan,
                                      const StageLatencyOracle& oracle) const {
  std::vector<double> stage_lats;
  stage_lats.reserve(plan.stages.size());
  for (const PipelineStageChoice& stage : plan.stages) {
    stage_lats.push_back(oracle(stage.slice, stage.mesh).latency_s);
  }
  return PipelineLatency(stage_lats, plan.num_microbatches);
}

}  // namespace predtop::parallel

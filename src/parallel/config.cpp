#include "parallel/config.h"

#include <sstream>

namespace predtop::parallel {

std::string ParallelConfig::ToString() const {
  std::ostringstream os;
  bool first = true;
  const auto append = [&](const char* tag, std::int32_t degree) {
    if (degree <= 1) return;
    if (!first) os << " x ";
    os << degree << "-way " << tag;
    first = false;
  };
  append("DP", dp);
  append("MP", mp);
  append("TP", tp);
  if (first) os << "no parallelism";
  return os.str();
}

std::vector<ParallelConfig> PaperConfigs(sim::Mesh mesh) {
  const std::int32_t d = mesh.NumDevices();
  if (d == 1) return {{1, 1, 1}};
  if (d == 2) return {{2, 1, 1}, {1, 2, 1}};
  if (d == 4) return {{4, 1, 1}, {2, 2, 1}, {1, 4, 1}};
  // General fallback: pure DP, pure MP, and the balanced hybrid.
  std::vector<ParallelConfig> out{{d, 1, 1}, {1, d, 1}};
  for (std::int32_t f = 2; f * f <= d; ++f) {
    if (d % f == 0) out.push_back({d / f, f, 1});
  }
  return out;
}

std::vector<ParallelConfig> AllConfigs(sim::Mesh mesh) {
  const std::int32_t d = mesh.NumDevices();
  std::vector<ParallelConfig> out;
  for (std::int32_t dp = 1; dp <= d; ++dp) {
    if (d % dp != 0) continue;
    const std::int32_t rest = d / dp;
    for (std::int32_t mp = 1; mp <= rest; ++mp) {
      if (rest % mp != 0) continue;
      out.push_back({dp, mp, rest / mp});
    }
  }
  return out;
}

}  // namespace predtop::parallel

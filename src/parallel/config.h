#pragma once
// Intra-stage parallelization configurations (paper Tbl. III). Within a
// stage's mesh, training is accelerated by a combination of:
//  - data parallelism (dp): the microbatch is split across dp replicas, and
//    weight gradients are all-reduced each iteration;
//  - model parallelism (mp): operators are partitioned into mp groups that
//    execute concurrently on disjoint device subsets (paper §II-A MP), with
//    activations communicated across group boundaries;
//  - tensor parallelism (tp): large dot-like operators are sharded across tp
//    devices inside a group, synchronizing with all-reduce.
// dp * mp * tp must equal the mesh's device count.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cluster.h"

namespace predtop::parallel {

struct ParallelConfig {
  std::int32_t dp = 1;
  std::int32_t mp = 1;
  std::int32_t tp = 1;

  [[nodiscard]] std::int32_t Degree() const noexcept { return dp * mp * tp; }
  [[nodiscard]] std::string ToString() const;
  bool operator==(const ParallelConfig&) const = default;
};

/// The paper's per-mesh configurations (Tbl. III):
///   mesh (1,1): {dp=1}             — single GPU, no parallelism
///   mesh (1,2): {dp=2}, {mp=2}     — 2-way data / 2-way model parallel
///   mesh (2,2): {dp=4}, {dp=2,mp=2}, {mp=4}
[[nodiscard]] std::vector<ParallelConfig> PaperConfigs(sim::Mesh mesh);

/// Every valid (dp, mp, tp) factorization of the mesh's device count
/// (used by exhaustive searches and tests).
[[nodiscard]] std::vector<ParallelConfig> AllConfigs(sim::Mesh mesh);

}  // namespace predtop::parallel

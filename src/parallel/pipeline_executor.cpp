#include "parallel/pipeline_executor.h"

#include <algorithm>
#include <stdexcept>

namespace predtop::parallel {

double PipelineTrace::BubbleSeconds() const noexcept {
  double bubble = 0.0;
  for (const auto& stage : intervals) {
    if (stage.empty()) continue;
    // Idle before the first microbatch plus gaps between consecutive ones,
    // plus idle after the last until the pipeline drains.
    bubble += stage.front().start_s;
    for (std::size_t m = 1; m < stage.size(); ++m) {
      bubble += stage[m].start_s - stage[m - 1].end_s;
    }
    bubble += makespan_s - stage.back().end_s;
  }
  return bubble;
}

PipelineTrace ExecutePipeline(const std::vector<std::vector<double>>& times) {
  PipelineTrace trace;
  if (times.empty()) return trace;
  const std::size_t stages = times.size();
  const std::size_t microbatches = times[0].size();
  for (const auto& row : times) {
    if (row.size() != microbatches) {
      throw std::invalid_argument("ExecutePipeline: ragged microbatch counts");
    }
    for (const double t : row) {
      if (t < 0.0) throw std::invalid_argument("ExecutePipeline: negative stage time");
    }
  }
  trace.intervals.assign(stages, std::vector<StageInterval>(microbatches));
  for (std::size_t s = 0; s < stages; ++s) {
    for (std::size_t m = 0; m < microbatches; ++m) {
      const double stage_free = m > 0 ? trace.intervals[s][m - 1].end_s : 0.0;
      const double input_ready = s > 0 ? trace.intervals[s - 1][m].end_s : 0.0;
      const double start = std::max(stage_free, input_ready);
      trace.intervals[s][m] = {start, start + times[s][m]};
      trace.makespan_s = std::max(trace.makespan_s, trace.intervals[s][m].end_s);
    }
  }
  return trace;
}

PipelineTrace ExecutePipeline(std::span<const double> stage_times,
                              std::int32_t num_microbatches) {
  std::vector<std::vector<double>> times;
  times.reserve(stage_times.size());
  for (const double t : stage_times) {
    times.emplace_back(static_cast<std::size_t>(num_microbatches), t);
  }
  return ExecutePipeline(times);
}

double ExecutePipelineMakespan(std::span<const double> stage_times,
                               std::int32_t num_microbatches) {
  return ExecutePipeline(stage_times, num_microbatches).makespan_s;
}

}  // namespace predtop::parallel

#pragma once
// Discrete-event execution of a 1F1B pipeline schedule (paper Fig. 6):
// microbatch m enters stage s as soon as stage s finished microbatch m-1
// AND stage s-1 finished microbatch m (unbounded inter-stage buffers).
//
// For constant per-microbatch stage times the makespan equals the paper's
// closed-form Eqn. 4 exactly — the executor is the ground truth the white-box
// model is validated against in tests — and it additionally supports
// per-(stage, microbatch) jitter, quantifying how far Eqn. 4 drifts when
// stage times vary run to run.

#include <cstdint>
#include <span>
#include <vector>

namespace predtop::parallel {

struct StageInterval {
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Full schedule trace: trace[stage][microbatch] execution interval.
struct PipelineTrace {
  std::vector<std::vector<StageInterval>> intervals;
  double makespan_s = 0.0;

  [[nodiscard]] std::size_t NumStages() const noexcept { return intervals.size(); }
  [[nodiscard]] std::size_t NumMicrobatches() const noexcept {
    return intervals.empty() ? 0 : intervals[0].size();
  }
  /// Total idle (bubble) time summed over stages.
  [[nodiscard]] double BubbleSeconds() const noexcept;
};

/// Execute with per-(stage, microbatch) times: times[s][m] > 0. All stages
/// must list the same number of microbatches.
[[nodiscard]] PipelineTrace ExecutePipeline(
    const std::vector<std::vector<double>>& stage_microbatch_times);

/// Convenience: constant per-stage times replicated across `num_microbatches`.
[[nodiscard]] PipelineTrace ExecutePipeline(std::span<const double> stage_times,
                                            std::int32_t num_microbatches);

/// Makespan only (constant stage times). Matches PipelineLatency (Eqn. 4)
/// exactly — kept as an independent implementation for cross-validation.
[[nodiscard]] double ExecutePipelineMakespan(std::span<const double> stage_times,
                                             std::int32_t num_microbatches);

}  // namespace predtop::parallel

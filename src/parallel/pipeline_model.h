#pragma once
// White-box pipeline latency model (paper §V, Eqn. 4) for the 1F1B
// schedule:  T = sum_i t_i + (B - 1) * max_j t_j,
// where t_i are per-microbatch stage latencies and B the number of
// microbatches. Inter-stage communication is ignored, as in the paper
// (negligible on high-bandwidth links relative to stage execution).

#include <cstdint>
#include <span>

namespace predtop::parallel {

/// Empty pipelines cost 0; `num_microbatches` is clamped to >= 1 (a
/// non-empty pipeline runs at least one microbatch).
[[nodiscard]] double PipelineLatency(std::span<const double> stage_latencies,
                                     std::int32_t num_microbatches) noexcept;

}  // namespace predtop::parallel

#include "parallel/pipeline_model.h"

#include <algorithm>

namespace predtop::parallel {

double PipelineLatency(std::span<const double> stage_latencies,
                       std::int32_t num_microbatches) noexcept {
  if (stage_latencies.empty()) return 0.0;
  // A non-empty pipeline always runs at least one microbatch: a caller
  // passing B < 1 (e.g. an unset config field) gets the single-microbatch
  // latency, not a silent 0.0 that would make every such plan look free.
  num_microbatches = std::max<std::int32_t>(1, num_microbatches);
  double sum = 0.0;
  double bottleneck = 0.0;
  for (const double t : stage_latencies) {
    sum += t;
    bottleneck = std::max(bottleneck, t);
  }
  return sum + static_cast<double>(num_microbatches - 1) * bottleneck;
}

}  // namespace predtop::parallel

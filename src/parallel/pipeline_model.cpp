#include "parallel/pipeline_model.h"

#include <algorithm>

namespace predtop::parallel {

double PipelineLatency(std::span<const double> stage_latencies,
                       std::int32_t num_microbatches) noexcept {
  if (stage_latencies.empty() || num_microbatches < 1) return 0.0;
  double sum = 0.0;
  double bottleneck = 0.0;
  for (const double t : stage_latencies) {
    sum += t;
    bottleneck = std::max(bottleneck, t);
  }
  return sum + static_cast<double>(num_microbatches - 1) * bottleneck;
}

}  // namespace predtop::parallel

#include "parallel/intra_op.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "util/rng.h"

namespace predtop::parallel {

namespace {

/// Quirk seed tied to the platform + device so the two platforms expose
/// different (but deterministic) efficiency landscapes.
std::uint64_t QuirkSeed(const sim::ClusterSpec& cluster) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const char c : cluster.name) h = util::SplitMix64(h ^ static_cast<std::uint64_t>(c));
  return h;
}

/// Bytes per parameter element of optimizer state relative to stored weight
/// bytes: f16 weights + f16 grads + two f32 Adam moments ~= 6x weight bytes.
constexpr double kOptimizerStateFactor = 6.0;
/// Activation working-set headroom over the largest single activation.
constexpr double kActivationHeadroom = 8.0;
/// Gradient all-reduce and optimizer update run once per iteration, not per
/// microbatch; amortize them over a nominal 1F1B microbatch count when
/// reporting per-microbatch stage latency.
constexpr double kGradSyncAmortization = 8.0;

}  // namespace

IntraOpCompiler::IntraOpCompiler(const sim::ClusterSpec& cluster, sim::Mesh mesh)
    : cluster_(cluster),
      mesh_(mesh),
      cost_model_(cluster.device, QuirkSeed(cluster)),
      collectives_(cluster, mesh) {
  if (!mesh.FitsIn(cluster)) {
    throw std::invalid_argument("IntraOpCompiler: mesh does not fit in cluster");
  }
}

namespace {

bool IsElementwiseFusable(ir::OpType op) noexcept {
  switch (op) {
    case ir::OpType::kAdd:
    case ir::OpType::kSub:
    case ir::OpType::kMul:
    case ir::OpType::kDiv:
    case ir::OpType::kMax:
    case ir::OpType::kExp:
    case ir::OpType::kRsqrt:
    case ir::OpType::kTanh:
    case ir::OpType::kGelu:
      return true;
    default:
      return false;
  }
}

/// Fraction of an op's standalone cost that survives when it is fused into
/// its producer (register pressure / occupancy effects keep it nonzero).
constexpr double kFusedCostFraction = 0.15;

}  // namespace

std::vector<bool> IntraOpCompiler::FusedEquations(const ir::StageProgram& program) {
  // Consumer counts per value across equations and program outputs.
  std::vector<std::int32_t> consumers(static_cast<std::size_t>(program.NumValues()), 0);
  for (const ir::Equation& eqn : program.equations()) {
    for (const ir::ValueId v : eqn.operands) ++consumers[static_cast<std::size_t>(v)];
  }
  for (const ir::ValueId v : program.outputs()) ++consumers[static_cast<std::size_t>(v)];

  std::vector<bool> fused(program.equations().size(), false);
  for (std::size_t i = 0; i < program.equations().size(); ++i) {
    const ir::Equation& eqn = program.equations()[i];
    if (!IsElementwiseFusable(eqn.op) || eqn.operands.empty()) continue;
    const ir::Value& primary = program.value(eqn.operands[0]);
    fused[i] = primary.kind == ir::ValueKind::kEquationResult &&
               consumers[static_cast<std::size_t>(eqn.operands[0])] == 1;
  }
  return fused;
}

IntraOpCompiler::EquationCost IntraOpCompiler::CostOf(const ir::StageProgram& program,
                                                      const ir::Equation& eqn,
                                                      ParallelConfig config, bool fused) const {
  EquationCost cost;
  const bool dot_like = eqn.op == ir::OpType::kDot || eqn.op == ir::OpType::kBatchedDot ||
                        eqn.op == ir::OpType::kConv2d;
  const double dp = config.dp;
  const double shard = dot_like ? dp * config.tp : dp;
  const double scale = 1.0 / shard;
  const double factor = sim::OpCostModel::TrainingFactor(eqn.op);
  cost.duration_s = factor * cost_model_.EquationSeconds(program, eqn, scale, scale);
  if (fused) cost.duration_s *= kFusedCostFraction;
  if (dot_like && config.tp > 1) {
    // Megatron-style row-parallel synchronization, forward + backward.
    const double result_bytes =
        static_cast<double>(program.value(eqn.result).spec.Bytes()) / dp;
    const sim::CollectiveModel intra_node(cluster_, sim::Mesh{1, config.tp});
    cost.duration_s += 2.0 * intra_node.AllReduceSeconds(result_bytes, config.tp);
  }
  cost.output_bytes = static_cast<double>(program.value(eqn.result).spec.Bytes()) / dp;
  return cost;
}

double IntraOpCompiler::IterationOverhead(const ir::StageProgram& program,
                                          ParallelConfig config) const {
  const double literal_bytes = static_cast<double>(program.LiteralBytes());
  const double bytes_per_replica =
      literal_bytes / static_cast<double>(config.mp * config.tp);
  double overhead = cost_model_.WeightUpdateSeconds(
      static_cast<std::int64_t>(bytes_per_replica));
  if (config.dp > 1) {
    overhead += collectives_.AllReduceSeconds(bytes_per_replica, config.dp);
  }
  return overhead / kGradSyncAmortization;
}

double IntraOpCompiler::PerDeviceMemoryBytes(const ir::StageProgram& program,
                                             ParallelConfig config) const {
  const double weight_bytes = static_cast<double>(program.LiteralBytes()) /
                              static_cast<double>(config.mp * config.tp);
  double peak_activation = 0.0;
  for (const ir::Equation& eqn : program.equations()) {
    peak_activation = std::max(
        peak_activation, static_cast<double>(program.value(eqn.result).spec.Bytes()) /
                             static_cast<double>(config.dp));
  }
  return kOptimizerStateFactor * weight_bytes + kActivationHeadroom * peak_activation;
}

bool IntraOpCompiler::MemoryFeasible(const ir::StageProgram& program,
                                     ParallelConfig config) const {
  const double capacity = static_cast<double>(cluster_.device.memory_gib) * (1ULL << 30);
  return PerDeviceMemoryBytes(program, config) <= capacity;
}

namespace {

/// Shared schedule engine. When `fixed_groups` is empty, assigns each
/// equation greedily to the group with the earliest finish time (HEFT-style)
/// and records the assignment in `out_groups`.
struct ScheduleEngine {
  const ir::StageProgram& program;
  ParallelConfig config;
  const sim::ClusterSpec& cluster;
  sim::Mesh mesh;
  std::function<IntraOpCompiler::EquationCost(const ir::Equation&)> cost_of;

  /// P2P time between two model-parallel groups (inter-node when the mesh
  /// spans nodes and the groups land on different nodes under node-major
  /// device layout).
  [[nodiscard]] double GroupCommSeconds(std::int32_t g1, std::int32_t g2, double bytes) const {
    if (g1 == g2 || bytes <= 0.0) return 0.0;
    const auto& net = cluster.interconnect;
    bool inter_node = false;
    if (mesh.SpansNodes() && config.mp > 1) {
      const std::int32_t devices_per_group = config.tp;
      const std::int32_t node1 = (g1 * devices_per_group) / mesh.gpus_per_node;
      const std::int32_t node2 = (g2 * devices_per_group) / mesh.gpus_per_node;
      inter_node = (node1 % mesh.num_nodes) != (node2 % mesh.num_nodes);
    }
    const double bw = (inter_node ? net.inter_node_gbps : net.intra_node_gbps) * 1e9;
    const double lat = (inter_node ? net.inter_node_latency_us : net.intra_node_latency_us) * 1e-6;
    // Activation forward + activation-gradient backward.
    return 2.0 * (bytes / bw + lat);
  }

  double Run(std::span<const std::int32_t> fixed_groups, std::vector<std::int32_t>* out_groups) {
    const auto& eqns = program.equations();
    const std::size_t n = eqns.size();
    const std::int32_t mp = config.mp;
    std::vector<double> finish(n, 0.0);
    std::vector<std::int32_t> group(n, 0);
    std::vector<double> lane_free(static_cast<std::size_t>(mp), 0.0);
    std::vector<double> out_bytes(n, 0.0);
    double makespan = 0.0;

    for (std::size_t i = 0; i < n; ++i) {
      const ir::Equation& eqn = eqns[i];
      const auto cost = cost_of(eqn);
      out_bytes[i] = cost.output_bytes;

      const auto ready_in_group = [&](std::int32_t g) {
        double ready = 0.0;
        for (const ir::ValueId v : eqn.operands) {
          const ir::Value& value = program.value(v);
          if (value.kind != ir::ValueKind::kEquationResult) continue;
          const auto producer = static_cast<std::size_t>(value.defining_equation);
          ready = std::max(ready, finish[producer] +
                                      GroupCommSeconds(group[producer], g,
                                                       out_bytes[producer]));
        }
        return ready;
      };

      std::int32_t chosen;
      if (!fixed_groups.empty()) {
        chosen = fixed_groups[i];
        if (chosen < 0 || chosen >= mp) {
          throw std::out_of_range("ScheduleEngine: group id out of range");
        }
      } else {
        chosen = 0;
        double best_finish = std::numeric_limits<double>::infinity();
        for (std::int32_t g = 0; g < mp; ++g) {
          const double f =
              std::max(ready_in_group(g), lane_free[static_cast<std::size_t>(g)]) +
              cost.duration_s;
          if (f < best_finish) {
            best_finish = f;
            chosen = g;
          }
        }
      }
      const double start =
          std::max(ready_in_group(chosen), lane_free[static_cast<std::size_t>(chosen)]);
      finish[i] = start + cost.duration_s;
      lane_free[static_cast<std::size_t>(chosen)] = finish[i];
      group[i] = chosen;
      makespan = std::max(makespan, finish[i]);
    }
    if (out_groups != nullptr) *out_groups = std::move(group);
    return makespan;
  }
};

}  // namespace

double IntraOpCompiler::SimulateLatency(const ir::StageProgram& program, ParallelConfig config,
                                        std::span<const std::int32_t> groups) const {
  if (config.Degree() != mesh_.NumDevices()) {
    throw std::invalid_argument("SimulateLatency: config degree != mesh devices");
  }
  if (!MemoryFeasible(program, config)) {
    return std::numeric_limits<double>::infinity();
  }
  const std::vector<bool> fused = FusedEquations(program);
  ScheduleEngine engine{program, config, cluster_, mesh_,
                        [&](const ir::Equation& e) {
                          const auto idx = static_cast<std::size_t>(
                              program.value(e.result).defining_equation);
                          return CostOf(program, e, config, fused[idx]);
                        }};
  const double makespan = engine.Run(groups, nullptr);
  return makespan + IterationOverhead(program, config);
}

StagePlan IntraOpCompiler::Compile(const ir::StageProgram& program, ParallelConfig config) const {
  StagePlan plan;
  plan.config = config;
  if (config.Degree() != mesh_.NumDevices()) {
    throw std::invalid_argument("Compile: config degree != mesh devices");
  }
  if (!MemoryFeasible(program, config)) return plan;  // invalid (+inf)
  const std::vector<bool> fused = FusedEquations(program);
  ScheduleEngine engine{program, config, cluster_, mesh_,
                        [&](const ir::Equation& e) {
                          const auto idx = static_cast<std::size_t>(
                              program.value(e.result).defining_equation);
                          return CostOf(program, e, config, fused[idx]);
                        }};
  const double makespan = engine.Run({}, &plan.group_of_equation);
  plan.latency_s = makespan + IterationOverhead(program, config);
  return plan;
}

StagePlan IntraOpCompiler::CompileBest(const ir::StageProgram& program,
                                       std::span<const ParallelConfig> configs) const {
  StagePlan best;
  for (const ParallelConfig& config : configs) {
    StagePlan plan = Compile(program, config);
    if (plan.latency_s < best.latency_s) best = std::move(plan);
  }
  return best;
}

}  // namespace predtop::parallel

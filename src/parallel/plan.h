#pragma once
// Plan types shared by the intra- and inter-operator optimizers.

#include <cstdint>
#include <limits>
#include <vector>

#include "ir/models.h"
#include "parallel/config.h"
#include "sim/cluster.h"

namespace predtop::parallel {

/// Result of compiling one stage for one mesh + parallel configuration.
struct StagePlan {
  ParallelConfig config;
  /// Model-parallel group of each equation (size = NumEquations, values in
  /// [0, config.mp)).
  std::vector<std::int32_t> group_of_equation;
  /// Simulated per-microbatch training latency of the stage; +inf when the
  /// stage does not fit in device memory.
  double latency_s = std::numeric_limits<double>::infinity();
  [[nodiscard]] bool Valid() const noexcept {
    return latency_s != std::numeric_limits<double>::infinity();
  }
};

/// One stage of an end-to-end pipeline plan.
struct PipelineStageChoice {
  ir::StageSlice slice;
  sim::Mesh mesh;
  ParallelConfig config;
  double latency_s = 0.0;
  /// Latency came from a degraded (fallback) oracle answer, not the primary
  /// predictor — see parallel::StageLatencyResult::degraded.
  bool degraded = false;
};

/// End-to-end parallelization plan (paper Fig. 6 / Eqn. 4 semantics).
struct PipelinePlan {
  std::vector<PipelineStageChoice> stages;
  std::int32_t num_microbatches = 1;
  double iteration_latency_s = std::numeric_limits<double>::infinity();
  [[nodiscard]] bool Valid() const noexcept {
    return !stages.empty() &&
           iteration_latency_s != std::numeric_limits<double>::infinity();
  }
};

}  // namespace predtop::parallel

#pragma once
// Intra-stage compiler: the substitute for Alpa's intra-operator ILM/ILP
// pass. For a (stage, mesh, config) triple it
//  1. scales per-equation work by the data- and tensor-parallel degrees,
//  2. partitions equations into `mp` operator groups with an HEFT-style
//     earliest-finish list scheduler (cross-group edges pay activation
//     communication),
//  3. simulates the resulting schedule — the stage latency is the makespan
//     plus the data-parallel gradient all-reduce and the optimizer update.
// The returned latency is the "optimal intra-stage execution latency" the
// black-box predictor is trained to regress (paper §III).

#include <span>

#include "ir/program.h"
#include "parallel/plan.h"
#include "sim/collective.h"
#include "sim/cost_model.h"

namespace predtop::parallel {

class IntraOpCompiler {
 public:
  IntraOpCompiler(const sim::ClusterSpec& cluster, sim::Mesh mesh);

  /// Greedy-optimized plan for one configuration.
  [[nodiscard]] StagePlan Compile(const ir::StageProgram& program,
                                  ParallelConfig config) const;

  /// Best plan across the given configurations (what a DL training system
  /// would deploy, and what the predictor is trained against).
  [[nodiscard]] StagePlan CompileBest(const ir::StageProgram& program,
                                      std::span<const ParallelConfig> configs) const;

  /// Simulated per-microbatch training latency for an explicit group
  /// assignment (exposed for tests and brute-force comparisons). Returns
  /// +inf when the stage does not fit in memory.
  [[nodiscard]] double SimulateLatency(const ir::StageProgram& program, ParallelConfig config,
                                       std::span<const std::int32_t> groups) const;

  /// Per-device memory demand in bytes (weights + optimizer state + peak
  /// activation working set).
  [[nodiscard]] double PerDeviceMemoryBytes(const ir::StageProgram& program,
                                            ParallelConfig config) const;
  [[nodiscard]] bool MemoryFeasible(const ir::StageProgram& program,
                                    ParallelConfig config) const;

  [[nodiscard]] const sim::ClusterSpec& Cluster() const noexcept { return cluster_; }
  [[nodiscard]] sim::Mesh MeshShape() const noexcept { return mesh_; }

  struct EquationCost {
    double duration_s = 0.0;     // on-device execution incl. TP collectives
    double output_bytes = 0.0;   // per-replica activation bytes (cross-group comm)
  };

  /// True for each equation the XLA-style fuser would absorb into its
  /// producer's kernel: a memory-bound elementwise op that is the sole
  /// consumer of its primary operand.
  [[nodiscard]] static std::vector<bool> FusedEquations(const ir::StageProgram& program);

 private:
  [[nodiscard]] EquationCost CostOf(const ir::StageProgram& program, const ir::Equation& eqn,
                                    ParallelConfig config, bool fused) const;
  /// Extra per-iteration cost outside the schedule: DP gradient all-reduce +
  /// optimizer update.
  [[nodiscard]] double IterationOverhead(const ir::StageProgram& program,
                                         ParallelConfig config) const;

  sim::ClusterSpec cluster_;
  sim::Mesh mesh_;
  sim::OpCostModel cost_model_;
  sim::CollectiveModel collectives_;
};

}  // namespace predtop::parallel

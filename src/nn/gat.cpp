#include "nn/gat.h"

#include <cmath>
#include <stdexcept>

namespace predtop::nn {

using autograd::Variable;

GatConv::GatConv(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
                 float negative_slope)
    : linear_(in_features, out_features, rng, /*with_bias=*/false),
      negative_slope_(negative_slope) {
  const float limit = std::sqrt(6.0f / static_cast<float>(out_features + 1));
  attn_src_ = Variable(tensor::Tensor::RandUniform({out_features, 1}, rng, -limit, limit), true);
  attn_dst_ = Variable(tensor::Tensor::RandUniform({out_features, 1}, rng, -limit, limit), true);
  bias_ = Variable(tensor::Tensor({out_features}), true);
}

Variable GatConv::Forward(const Variable& x, const std::vector<std::int32_t>& edge_src,
                          const std::vector<std::int32_t>& edge_dst) const {
  if (edge_src.size() != edge_dst.size()) {
    throw std::invalid_argument("GatConv: edge arrays must have equal length");
  }
  const std::int64_t n = x.value().dim(0);
  const Variable h = linear_.Forward(x);  // (n, out)
  // Per-node attention contributions, then gathered per edge.
  const Variable src_scores = autograd::MatMul(h, attn_src_);  // (n, 1)
  const Variable dst_scores = autograd::MatMul(h, attn_dst_);  // (n, 1)
  const Variable e = autograd::LeakyRelu(
      autograd::Add(autograd::IndexSelectRows(src_scores, edge_src),
                    autograd::IndexSelectRows(dst_scores, edge_dst)),
      negative_slope_);  // (E, 1)
  // Normalize over incoming edges of each destination node.
  const Variable alpha = autograd::SegmentSoftmax(e, edge_dst, n);  // (E, 1)
  const Variable messages =
      autograd::RowScale(autograd::IndexSelectRows(h, edge_src), alpha);  // (E, out)
  const Variable aggregated = autograd::SegmentSum(messages, edge_dst, n);  // (n, out)
  return autograd::AddRowVector(aggregated, bias_);
}

tensor::MatRef GatConv::InferForward(tensor::ConstMat x,
                                     const std::vector<std::int32_t>& edge_src,
                                     const std::vector<std::int32_t>& edge_dst,
                                     InferenceContext& ctx) const {
  if (edge_src.size() != edge_dst.size()) {
    throw std::invalid_argument("GatConv: edge arrays must have equal length");
  }
  const std::int64_t n = x.rows;
  const tensor::MatRef h = linear_.InferForward(x, ctx);  // (n, out)
  const tensor::MatRef src_scores =
      infer::MatMul(ctx, h, infer::View(attn_src_.value()));  // (n, 1)
  const tensor::MatRef dst_scores =
      infer::MatMul(ctx, h, infer::View(attn_dst_.value()));  // (n, 1)
  tensor::MatRef e = infer::IndexSelectRows(ctx, src_scores, edge_src);  // (E, 1)
  infer::AddInPlace(e, infer::IndexSelectRows(ctx, dst_scores, edge_dst));
  infer::LeakyReluInPlace(e, negative_slope_);
  const tensor::MatRef alpha = infer::SegmentSoftmax(ctx, e, edge_dst, n);  // (E, 1)
  tensor::MatRef messages = infer::IndexSelectRows(ctx, h, edge_src);       // (E, out)
  infer::RowScaleInPlace(messages, alpha);
  tensor::MatRef aggregated = infer::SegmentSum(ctx, messages, edge_dst, n);  // (n, out)
  infer::AddRowVectorInPlace(aggregated, bias_.value());
  return aggregated;
}

std::vector<Variable*> GatConv::Parameters() {
  std::vector<Variable*> out = linear_.Parameters();
  out.push_back(&attn_src_);
  out.push_back(&attn_dst_);
  out.push_back(&bias_);
  return out;
}

std::vector<NamedParameter> GatConv::NamedParameters() {
  std::vector<NamedParameter> out;
  AppendNamedParameters(out, "linear", linear_);
  out.push_back({"attn_src", &attn_src_});
  out.push_back({"attn_dst", &attn_dst_});
  out.push_back({"bias", &bias_});
  return out;
}

}  // namespace predtop::nn

#include "nn/optimizer.h"

#include <cmath>

#include "nn/infer.h"

namespace predtop::nn {

Adam::Adam(Module& model, AdamConfig config) : model_(model), config_(config) {
  for (const auto* p : model_.Parameters()) {
    m_.emplace_back(p->value().shape());
    v_.emplace_back(p->value().shape());
  }
}

bool Adam::Step(float lr) {
  const auto params = model_.Parameters();
  // Scan every gradient BEFORE mutating anything: a partial update that
  // aborts midway would corrupt the moment buffers just as surely as
  // letting the NaN through.
  for (const auto* p : params) {
    for (const float g : p->grad().data()) {
      if (!std::isfinite(g)) return false;
    }
  }
  ++t_;
  const float b1 = config_.beta1, b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& value = params[i]->mutable_value();
    const auto grad = params[i]->grad().data();
    auto val = value.data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < val.size(); ++j) {
      const float g = grad[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      float update = mhat / (std::sqrt(vhat) + config_.eps);
      if (config_.weight_decay > 0.0f) update += config_.weight_decay * val[j];
      val[j] -= lr * update;
    }
  }
  BumpParameterEpoch();  // cached packed weights must repack
  return true;
}

float CosineDecayLr(float base_lr, std::int64_t epoch, std::int64_t total_epochs) {
  if (total_epochs <= 1) return base_lr;
  // total_epochs - 1, not total_epochs: the last epoch run is total - 1, and
  // the schedule must land on 0 there.
  const float frac =
      static_cast<float>(epoch) / static_cast<float>(total_epochs - 1);
  return 0.5f * base_lr * (1.0f + std::cos(3.14159265358979323846f * frac));
}

}  // namespace predtop::nn

#pragma once
// Generic regression trainer: mini-batch gradient accumulation, cosine LR
// decay, MAE/MSE losses (paper §IV-B7 selects MAE), and early stopping with
// best-weights restore (paper §IV-B8).
//
// The trainer is dataset-agnostic: samples are addressed by index through a
// forward callback so it can drive any of the predictor architectures.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace predtop::util {
class ThreadPool;
}

namespace predtop::nn {

enum class LossKind { kMae, kMse };

struct TrainConfig {
  std::int64_t max_epochs = 500;  // paper: 500
  std::int64_t batch_size = 32;   // paper: 32
  float base_lr = 1e-3f;          // paper: 1e-3 cosine-decayed to 0
  /// Stop after this many epochs without validation improvement (paper: 200).
  std::int64_t patience = 200;
  LossKind loss = LossKind::kMae;
  AdamConfig adam;
  std::uint64_t shuffle_seed = 0x7ea1ULL;
  /// Log progress every N epochs at debug level; 0 disables.
  std::int64_t log_every = 0;
  /// Data-parallel workers: each mini-batch is sharded across this many
  /// threads, per-shard gradients accumulate in private buffers (see
  /// autograd::BackwardInto), and a fixed-order chunked reduction feeds one
  /// Adam step — so results are bit-identical across runs for a given value.
  /// <= 1 keeps the original serial loop (the throughput baseline; it sums
  /// the batch loss before one backward, so its float rounding differs from
  /// the sharded path by O(batch * eps)). Values > 1 require `forward` to be
  /// safe to call concurrently from several threads (true for the tape
  /// predictors: they share only parameter reads).
  std::int64_t threads = 1;
};

struct TrainResult {
  std::int64_t epochs_run = 0;
  std::int64_t best_epoch = -1;
  double best_val_loss = 0.0;
  std::vector<double> train_loss_history;
  std::vector<double> val_loss_history;
  /// Optimizer steps refused because the batch loss or a reduced gradient
  /// was non-finite (fault injection, numeric blowup). Skipped batches do
  /// not touch weights or Adam moments and are excluded from the epoch's
  /// train-loss mean.
  std::int64_t skipped_steps = 0;
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  /// `forward(i)` must build the model's prediction (a (1,1) Variable) for
  /// sample i; `targets[i]` is its regression label. Trains on
  /// `train_indices`, early-stops on `val_indices` (restoring the best
  /// weights), and leaves the model ready for inference.
  TrainResult Fit(Module& model,
                  const std::function<autograd::Variable(std::size_t)>& forward,
                  std::span<const float> targets,
                  std::span<const std::size_t> train_indices,
                  std::span<const std::size_t> val_indices) const;

  /// Mean loss (per config_.loss) of the model over `indices`.
  [[nodiscard]] double Evaluate(const std::function<autograd::Variable(std::size_t)>& forward,
                                std::span<const float> targets,
                                std::span<const std::size_t> indices) const;

  [[nodiscard]] const TrainConfig& Config() const noexcept { return config_; }

 private:
  /// Evaluate with an optional pool: per-sample losses land in slots, then a
  /// fixed-order serial sum — bitwise identical with and without the pool.
  [[nodiscard]] double EvaluateWith(const std::function<autograd::Variable(std::size_t)>& forward,
                                    std::span<const float> targets,
                                    std::span<const std::size_t> indices,
                                    util::ThreadPool* pool) const;

  TrainConfig config_;
};

/// Deterministic train/validation/test split of [0, n): `train_fraction`
/// for training, `val_fraction` for validation, remainder test. Mirrors the
/// paper's protocol (10%..80% train, 10% validation, rest test).
struct DataSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
  std::vector<std::size_t> test;
};
[[nodiscard]] DataSplit SplitDataset(std::size_t n, double train_fraction,
                                     double val_fraction, util::Rng& rng);

}  // namespace predtop::nn

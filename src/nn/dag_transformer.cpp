#include "nn/dag_transformer.h"

namespace predtop::nn {

using autograd::Variable;

DagTransformerLayer::DagTransformerLayer(std::int64_t dim, std::int64_t heads,
                                         std::int64_t ffn_mult, util::Rng& rng)
    : attention_(dim, heads, rng),
      ffn_in_(dim, ffn_mult * dim, rng),
      ffn_out_(ffn_mult * dim, dim, rng),
      norm1_gain_(tensor::Tensor::Full({dim}, 1.0f), true),
      norm1_bias_(tensor::Tensor({dim}), true),
      norm2_gain_(tensor::Tensor::Full({dim}, 1.0f), true),
      norm2_bias_(tensor::Tensor({dim}), true) {}

Variable DagTransformerLayer::Forward(const Variable& x,
                                      const tensor::Tensor& reachability_mask) const {
  const Variable attn = attention_.Forward(x, reachability_mask);
  const Variable h1 =
      autograd::LayerNorm(autograd::Add(x, attn), norm1_gain_, norm1_bias_);
  const Variable ffn = ffn_out_.Forward(autograd::Relu(ffn_in_.Forward(h1)));
  return autograd::LayerNorm(autograd::Add(h1, ffn), norm2_gain_, norm2_bias_);
}

tensor::MatRef DagTransformerLayer::InferForward(tensor::ConstMat x,
                                                 const tensor::Tensor* reachability_mask,
                                                 InferenceContext& ctx) const {
  tensor::MatRef attn = attention_.InferForward(x, reachability_mask, ctx);
  infer::AddInPlace(attn, x);  // residual: x + attn
  const tensor::MatRef h1 = infer::LayerNorm(ctx, attn, norm1_gain_.value(), norm1_bias_.value());
  tensor::MatRef f = ffn_in_.InferForward(h1, ctx);
  infer::ReluInPlace(f);
  tensor::MatRef ffn = ffn_out_.InferForward(f, ctx);
  infer::AddInPlace(ffn, h1);  // residual: h1 + ffn
  return infer::LayerNorm(ctx, ffn, norm2_gain_.value(), norm2_bias_.value());
}

std::vector<Variable*> DagTransformerLayer::Parameters() {
  std::vector<Variable*> out = attention_.Parameters();
  for (auto* p : ffn_in_.Parameters()) out.push_back(p);
  for (auto* p : ffn_out_.Parameters()) out.push_back(p);
  out.push_back(&norm1_gain_);
  out.push_back(&norm1_bias_);
  out.push_back(&norm2_gain_);
  out.push_back(&norm2_bias_);
  return out;
}

std::vector<NamedParameter> DagTransformerLayer::NamedParameters() {
  std::vector<NamedParameter> out;
  AppendNamedParameters(out, "attention", attention_);
  AppendNamedParameters(out, "ffn_in", ffn_in_);
  AppendNamedParameters(out, "ffn_out", ffn_out_);
  out.push_back({"norm1.gain", &norm1_gain_});
  out.push_back({"norm1.bias", &norm1_bias_});
  out.push_back({"norm2.gain", &norm2_gain_});
  out.push_back({"norm2.bias", &norm2_bias_});
  return out;
}

}  // namespace predtop::nn

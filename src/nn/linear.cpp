#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

namespace predtop::nn {

using autograd::Variable;

Linear::Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
               bool with_bias)
    : in_(in_features), out_(out_features) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: feature counts must be positive");
  }
  const float limit = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = Variable(
      tensor::Tensor::RandUniform({in_features, out_features}, rng, -limit, limit), true);
  if (with_bias) {
    bias_ = Variable(tensor::Tensor({out_features}), true);
  }
}

Variable Linear::Forward(const Variable& x) const {
  Variable y = autograd::MatMul(x, weight_);
  if (bias_.defined()) y = autograd::AddRowVector(y, bias_);
  return y;
}

std::vector<Variable*> Linear::Parameters() {
  std::vector<Variable*> out{&weight_};
  if (bias_.defined()) out.push_back(&bias_);
  return out;
}

std::vector<NamedParameter> Linear::NamedParameters() {
  std::vector<NamedParameter> out{{"weight", &weight_}};
  if (bias_.defined()) out.push_back({"bias", &bias_});
  return out;
}

Mlp::Mlp(std::vector<std::int64_t> dims, util::Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least input and output dims");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = autograd::Relu(h);
  }
  return h;
}

std::vector<Variable*> Mlp::Parameters() {
  std::vector<Variable*> out;
  for (auto& l : layers_) {
    for (auto* p : l.Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<NamedParameter> Mlp::NamedParameters() {
  std::vector<NamedParameter> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    AppendNamedParameters(out, "layers." + std::to_string(i), layers_[i]);
  }
  return out;
}

}  // namespace predtop::nn

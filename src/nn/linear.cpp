#include "nn/linear.h"

#include <cmath>
#include <stdexcept>

#include "tensor/simd.h"

namespace predtop::nn {

using autograd::Variable;

Linear::Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
               bool with_bias)
    : in_(in_features), out_(out_features) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: feature counts must be positive");
  }
  const float limit = std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = Variable(
      tensor::Tensor::RandUniform({in_features, out_features}, rng, -limit, limit), true);
  if (with_bias) {
    bias_ = Variable(tensor::Tensor({out_features}), true);
  }
}

Variable Linear::Forward(const Variable& x) const {
  Variable y = autograd::MatMul(x, weight_);
  if (bias_.defined()) y = autograd::AddRowVector(y, bias_);
  return y;
}

std::shared_ptr<const Linear::InferWeights> Linear::SnapshotInferWeights() const {
  const std::uint64_t epoch = ParameterEpoch();
  const tensor::GemmPrec prec = tensor::WeightPrec();
  std::lock_guard<std::mutex> lock(infer_cache_->mutex);
  std::shared_ptr<const InferWeights>& cached = infer_cache_->weights;
  if (cached == nullptr || cached->epoch != epoch || cached->prec != prec) {
    auto fresh = std::make_shared<InferWeights>();
    fresh->epoch = epoch;
    fresh->prec = prec;
    const tensor::Tensor& w = weight_.value();
    if (out_ >= tensor::kGemmPanel && in_ >= 8) {
      // Shapes the packed tier can ever dispatch to (UsePackedGemm's k/n
      // preconditions; m is the per-call row count). The reduced-precision
      // tier only replaces this pack — the narrow-dot and naive tiers stay
      // fp32 (their shapes are too small for quantization to pay for the
      // widening, and the regression head's scalar output is where rounding
      // hurts the most).
      tensor::PackBInto(w.data().data(), in_, out_, fresh->pack);
      if (prec == tensor::GemmPrec::kBf16) {
        tensor::PackB16Into(w.data().data(), in_, out_, fresh->pack16);
      } else if (prec == tensor::GemmPrec::kInt8) {
        tensor::PackB8Into(w.data().data(), in_, out_, fresh->pack8);
      }
    }
    if (out_ < 16 && in_ >= 16) {
      fresh->weight_t = tensor::Transpose2D(w);  // narrow-output dot tier
    }
    cached = std::move(fresh);
  }
  return cached;
}

tensor::MatRef Linear::InferForward(tensor::ConstMat x, InferenceContext& ctx) const {
  if (x.cols != in_) throw std::invalid_argument("Linear::InferForward: feature width mismatch");
  const std::int64_t m = x.rows;
  tensor::MatRef y{};
  // Tier selection must match tensor::MatMul(x, W) exactly for parity.
  if (tensor::UsePackedGemm(m, in_, out_)) {
    const auto cached = SnapshotInferWeights();
    y = ctx.arena().Alloc(m, out_);
    switch (cached->prec) {
      case tensor::GemmPrec::kBf16:
        tensor::MatMulPackedB16Into(x.data, m, cached->pack16, y.data);
        break;
      case tensor::GemmPrec::kInt8:
        tensor::MatMulPackedB8Into(x.data, m, cached->pack8, y.data);
        break;
      default: tensor::MatMulPackedInto(x.data, m, cached->pack, y.data); break;
    }
  } else if (out_ < 16 && in_ >= 16) {
    const auto cached = SnapshotInferWeights();
    const float* wt = cached->weight_t.data().data();
    y = ctx.arena().Alloc(m, out_);
    for (std::int64_t i = 0; i < m; ++i) {
      const float* xrow = x.data + i * in_;
      float* yrow = y.data + i * out_;
      for (std::int64_t j = 0; j < out_; ++j) {
        yrow[j] = tensor::simd::Dot(xrow, wt + j * in_, in_);
      }
    }
  } else {
    y = ctx.arena().AllocZeroed(m, out_);
    const float* pw = weight_.value().data().data();
    for (std::int64_t i = 0; i < m; ++i) {
      const float* xrow = x.data + i * in_;
      float* yrow = y.data + i * out_;
      for (std::int64_t kk = 0; kk < in_; ++kk) {
        const float av = xrow[kk];
        if (av == 0.0f) continue;  // same skip as the training kernel
        const float* wrow = pw + kk * out_;
        for (std::int64_t j = 0; j < out_; ++j) yrow[j] += av * wrow[j];
      }
    }
  }
  if (bias_.defined()) infer::AddRowVectorInPlace(y, bias_.value());
  return y;
}

std::vector<Variable*> Linear::Parameters() {
  std::vector<Variable*> out{&weight_};
  if (bias_.defined()) out.push_back(&bias_);
  return out;
}

std::vector<NamedParameter> Linear::NamedParameters() {
  std::vector<NamedParameter> out{{"weight", &weight_}};
  if (bias_.defined()) out.push_back({"bias", &bias_});
  return out;
}

Mlp::Mlp(std::vector<std::int64_t> dims, util::Rng& rng) {
  if (dims.size() < 2) throw std::invalid_argument("Mlp: need at least input and output dims");
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Variable Mlp::Forward(const Variable& x) const {
  Variable h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = autograd::Relu(h);
  }
  return h;
}

tensor::MatRef Mlp::InferForward(tensor::ConstMat x, InferenceContext& ctx) const {
  tensor::MatRef h = layers_.front().InferForward(x, ctx);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    infer::ReluInPlace(h);
    h = layers_[i].InferForward(h, ctx);
  }
  return h;
}

std::vector<Variable*> Mlp::Parameters() {
  std::vector<Variable*> out;
  for (auto& l : layers_) {
    for (auto* p : l.Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<NamedParameter> Mlp::NamedParameters() {
  std::vector<NamedParameter> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    AppendNamedParameters(out, "layers." + std::to_string(i), layers_[i]);
  }
  return out;
}

}  // namespace predtop::nn

#pragma once
// Binary (de)serialization of module parameters — a trained stage predictor
// is an artifact the workflow produces once per mesh and reuses across plan
// searches, so it must survive process restarts.
//
// Format per tensor: rank (u32), dims (i64 each), data (f32 LE). The
// parameter list order is the Module's Parameters() order, which is stable
// by construction.

#include <iosfwd>
#include <string>

#include "nn/module.h"

namespace predtop::nn {

void WriteParameters(std::ostream& out, Module& module);
/// Shapes must match the module's current parameters exactly.
void ReadParameters(std::istream& in, Module& module);

void SaveParameters(const std::string& path, Module& module);
void LoadParameters(const std::string& path, Module& module);

/// Raw tensor stream helpers (shared with higher-level checkpoint formats).
void WriteTensor(std::ostream& out, const tensor::Tensor& t);
[[nodiscard]] tensor::Tensor ReadTensor(std::istream& in);

}  // namespace predtop::nn

#pragma once
// Binary (de)serialization of module parameters — a trained stage predictor
// is an artifact the workflow produces once per mesh and reuses across plan
// searches and serving processes, so it must survive process restarts.
//
// Two layers:
//  - raw tensor stream: rank (u32), dims (i64 each), data (f32 LE);
//  - state dict: count (u32), then per parameter a length-prefixed dotted
//    name followed by its tensor. Loading matches by *name* (order
//    independent) and rejects unknown/missing/duplicate names and shape
//    mismatches, so a corrupt file or a different architecture fails loudly
//    instead of silently misassigning weights.
//
// Higher-level checkpoint formats (core::LatencyRegressor, serve::) frame a
// state dict with magic/version/hyperparameter headers and a CRC32 footer.
//
// Hardening: every length/rank prefix is validated against the remaining
// stream size (or a hard cap on non-seekable streams) *before* it sizes an
// allocation, and every failure is a typed fault::CorruptionError /
// fault::IoError — a 4-byte hostile prefix can neither trigger a multi-GB
// allocation nor masquerade as an unrelated error.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "nn/module.h"

namespace predtop::nn {

/// Positional parameter stream (legacy; kept for flat snapshots).
void WriteParameters(std::ostream& out, Module& module);
/// Shapes must match the module's current parameters exactly.
void ReadParameters(std::istream& in, Module& module);

/// Named state dict (preferred checkpoint payload).
void WriteStateDict(std::ostream& out, Module& module);
void ReadStateDict(std::istream& in, Module& module);

void SaveParameters(const std::string& path, Module& module);
void LoadParameters(const std::string& path, Module& module);

/// Raw tensor stream helpers (shared with higher-level checkpoint formats).
void WriteTensor(std::ostream& out, const tensor::Tensor& t);
[[nodiscard]] tensor::Tensor ReadTensor(std::istream& in);

/// Length-prefixed string helpers for checkpoint headers.
void WriteString(std::ostream& out, const std::string& s);
[[nodiscard]] std::string ReadString(std::istream& in);

/// Bytes left between the stream's current position and its end, or nullopt
/// when the stream is not seekable. Restores the read position and state.
[[nodiscard]] std::optional<std::uint64_t> RemainingBytes(std::istream& in);

/// Throw fault::CorruptionError if a length prefix claims more bytes than
/// the stream can still supply (falls back to a 1 GiB cap when the remaining
/// size is unknowable). `what` names the claimed blob in the error message.
void CheckClaimedSize(std::istream& in, std::uint64_t claimed_bytes, const char* what);

}  // namespace predtop::nn

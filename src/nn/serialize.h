#pragma once
// Binary (de)serialization of module parameters — a trained stage predictor
// is an artifact the workflow produces once per mesh and reuses across plan
// searches and serving processes, so it must survive process restarts.
//
// Two layers:
//  - raw tensor stream: rank (u32), dims (i64 each), data (f32 LE);
//  - state dict: count (u32), then per parameter a length-prefixed dotted
//    name followed by its tensor. Loading matches by *name* (order
//    independent) and rejects unknown/missing/duplicate names and shape
//    mismatches, so a corrupt file or a different architecture fails loudly
//    instead of silently misassigning weights.
//
// Higher-level checkpoint formats (core::LatencyRegressor, serve::) frame a
// state dict with magic/version/hyperparameter headers.

#include <iosfwd>
#include <string>

#include "nn/module.h"

namespace predtop::nn {

/// Positional parameter stream (legacy; kept for flat snapshots).
void WriteParameters(std::ostream& out, Module& module);
/// Shapes must match the module's current parameters exactly.
void ReadParameters(std::istream& in, Module& module);

/// Named state dict (preferred checkpoint payload).
void WriteStateDict(std::ostream& out, Module& module);
void ReadStateDict(std::istream& in, Module& module);

void SaveParameters(const std::string& path, Module& module);
void LoadParameters(const std::string& path, Module& module);

/// Raw tensor stream helpers (shared with higher-level checkpoint formats).
void WriteTensor(std::ostream& out, const tensor::Tensor& t);
[[nodiscard]] tensor::Tensor ReadTensor(std::istream& in);

/// Length-prefixed string helpers for checkpoint headers.
void WriteString(std::ostream& out, const std::string& s);
[[nodiscard]] std::string ReadString(std::istream& in);

}  // namespace predtop::nn

#pragma once
// Graph Convolutional Network layer (Kipf & Welling '17): H' = Â H W + b
// with Â the symmetrically normalized adjacency (precomputed by the graph
// encoder). Activation is applied by the caller.

#include <cstdint>
#include <memory>

#include "nn/linear.h"
#include "tensor/sparse.h"

namespace predtop::nn {

class GcnConv : public Module {
 public:
  GcnConv(std::int64_t in_features, std::int64_t out_features, util::Rng& rng);

  /// x: (n, in); adj_norm / adj_norm_t: Â and Â^T. Returns (n, out).
  [[nodiscard]] autograd::Variable Forward(
      const autograd::Variable& x, std::shared_ptr<const tensor::Csr> adj_norm,
      std::shared_ptr<const tensor::Csr> adj_norm_t) const;

  /// Tape-free forward into ctx's arena (Â^T is only needed for gradients).
  [[nodiscard]] tensor::MatRef InferForward(tensor::ConstMat x, const tensor::Csr& adj_norm,
                                            InferenceContext& ctx) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

  /// Inner projection (the compiled-program builder records it directly).
  [[nodiscard]] const Linear& Projection() const noexcept { return linear_; }

 private:
  Linear linear_;
};

}  // namespace predtop::nn

#include "nn/module.h"

#include <stdexcept>

namespace predtop::nn {

std::size_t Module::ParameterCount() {
  std::size_t n = 0;
  for (const auto* p : Parameters()) n += static_cast<std::size_t>(p->value().numel());
  return n;
}

void Module::ZeroGrad() {
  for (auto* p : Parameters()) p->ZeroGrad();
}

std::vector<tensor::Tensor> Module::SnapshotParameters() {
  std::vector<tensor::Tensor> out;
  for (const auto* p : Parameters()) out.push_back(p->value());
  return out;
}

void Module::RestoreParameters(const std::vector<tensor::Tensor>& snapshot) {
  auto params = Parameters();
  if (snapshot.size() != params.size()) {
    throw std::invalid_argument("RestoreParameters: snapshot size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!params[i]->value().SameShape(snapshot[i])) {
      throw std::invalid_argument("RestoreParameters: parameter shape mismatch");
    }
    params[i]->mutable_value() = snapshot[i];
  }
}

}  // namespace predtop::nn

#include "nn/module.h"

#include <stdexcept>

#include "nn/infer.h"
#include "nn/serialize.h"

namespace predtop::nn {

std::size_t Module::ParameterCount() {
  std::size_t n = 0;
  for (const auto* p : Parameters()) n += static_cast<std::size_t>(p->value().numel());
  return n;
}

void Module::ZeroGrad() {
  for (auto* p : Parameters()) p->ZeroGrad();
}

std::vector<NamedParameter> Module::NamedParameters() {
  std::vector<NamedParameter> out;
  const auto params = Parameters();
  out.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    out.push_back({"param." + std::to_string(i), params[i]});
  }
  return out;
}

std::vector<tensor::Tensor> Module::SnapshotParameters() {
  std::vector<tensor::Tensor> out;
  for (const auto* p : Parameters()) out.push_back(p->value());
  return out;
}

void Module::RestoreParameters(const std::vector<tensor::Tensor>& snapshot) {
  auto params = Parameters();
  if (snapshot.size() != params.size()) {
    throw std::invalid_argument("RestoreParameters: snapshot size mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!params[i]->value().SameShape(snapshot[i])) {
      throw std::invalid_argument("RestoreParameters: parameter shape mismatch");
    }
    params[i]->mutable_value() = snapshot[i];
  }
  BumpParameterEpoch();  // cached packed weights must repack
}

void Module::Save(std::ostream& out) { WriteStateDict(out, *this); }

void Module::Load(std::istream& in) { ReadStateDict(in, *this); }

void AppendNamedParameters(std::vector<NamedParameter>& out, const std::string& prefix,
                           Module& child) {
  for (const NamedParameter& p : child.NamedParameters()) {
    out.push_back({prefix + "." + p.name, p.variable});
  }
}

}  // namespace predtop::nn

#pragma once
// Multi-head scaled-dot-product attention with an additive mask — the core
// of the DAG Transformer layer (paper Eqn. 1): the mask carries the DAG
// reachability structure (0 where attention is allowed, -inf elsewhere).

#include <cstdint>

#include "nn/linear.h"

namespace predtop::nn {

class MultiheadMaskedAttention : public Module {
 public:
  /// `dim` must be divisible by `heads`.
  MultiheadMaskedAttention(std::int64_t dim, std::int64_t heads, util::Rng& rng);

  /// x: (n, dim); additive_mask: (n, n) with 0 / -inf entries, shared across
  /// heads. Returns (n, dim).
  [[nodiscard]] autograd::Variable Forward(const autograd::Variable& x,
                                           const tensor::Tensor& additive_mask) const;

  /// Tape-free forward into ctx's arena. `additive_mask` may be null for
  /// unrestricted attention (numerically identical to an all-zero mask).
  [[nodiscard]] tensor::MatRef InferForward(tensor::ConstMat x,
                                            const tensor::Tensor* additive_mask,
                                            InferenceContext& ctx) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

  [[nodiscard]] std::int64_t Heads() const noexcept { return heads_; }
  [[nodiscard]] std::int64_t Dim() const noexcept { return dim_; }
  [[nodiscard]] std::int64_t HeadDim() const noexcept { return head_dim_; }

  // Projection handles for the compiled-program builder (predtop::compile),
  // which records the q/k/v/o chain as one fused step.
  [[nodiscard]] const Linear& Wq() const noexcept { return wq_; }
  [[nodiscard]] const Linear& Wk() const noexcept { return wk_; }
  [[nodiscard]] const Linear& Wv() const noexcept { return wv_; }
  [[nodiscard]] const Linear& Wo() const noexcept { return wo_; }

 private:
  std::int64_t dim_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace predtop::nn

#pragma once
// Graph Attention Network layer (Velickovic et al. '18), single-head:
//   h_i' = sum_{j in N(i)} alpha_ij (W h_j) + b
//   e_ij = LeakyReLU(a_src . Wh_j + a_dst . Wh_i), alpha = softmax_j(e_ij)
// over an edge list that must include self-loops (ensured by the encoder).

#include <cstdint>
#include <vector>

#include "nn/linear.h"

namespace predtop::nn {

class GatConv : public Module {
 public:
  GatConv(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
          float negative_slope = 0.2f);

  /// x: (n, in); edges given as parallel src/dst arrays (message flows
  /// src -> dst). Returns (n, out).
  [[nodiscard]] autograd::Variable Forward(const autograd::Variable& x,
                                           const std::vector<std::int32_t>& edge_src,
                                           const std::vector<std::int32_t>& edge_dst) const;

  /// Tape-free forward into ctx's arena.
  [[nodiscard]] tensor::MatRef InferForward(tensor::ConstMat x,
                                            const std::vector<std::int32_t>& edge_src,
                                            const std::vector<std::int32_t>& edge_dst,
                                            InferenceContext& ctx) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

  // Structure accessors for the compiled-program builder (predtop::compile).
  [[nodiscard]] const Linear& Projection() const noexcept { return linear_; }
  [[nodiscard]] const autograd::Variable& AttnSrc() const noexcept { return attn_src_; }
  [[nodiscard]] const autograd::Variable& AttnDst() const noexcept { return attn_dst_; }
  [[nodiscard]] const autograd::Variable& BiasVar() const noexcept { return bias_; }
  [[nodiscard]] float NegativeSlope() const noexcept { return negative_slope_; }

 private:
  Linear linear_;
  autograd::Variable attn_src_;  // (out, 1)
  autograd::Variable attn_dst_;  // (out, 1)
  autograd::Variable bias_;      // (out)
  float negative_slope_;
};

}  // namespace predtop::nn

#pragma once
// Adam optimizer (Kingma & Ba) with the paper's defaults (beta1=0.9,
// beta2=0.999) and a cosine learning-rate decay schedule (paper §IV-B6:
// lr starts at 1e-3 and decays to 0 over the training run).

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace predtop::nn {

struct AdamConfig {
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  // decoupled (AdamW-style) when > 0
};

class Adam {
 public:
  explicit Adam(Module& model, AdamConfig config = {});

  /// Apply one update with the given learning rate using gradients
  /// accumulated on the parameters; does not zero gradients. If ANY gradient
  /// element is non-finite the step is refused before touching weights,
  /// moments, or the step count — NaN must never poison optimizer state —
  /// and false is returned so the caller can count the skip.
  bool Step(float lr);

  [[nodiscard]] std::int64_t StepCount() const noexcept { return t_; }

 private:
  Module& model_;
  AdamConfig config_;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
  std::int64_t t_ = 0;
};

/// Cosine decay: lr(e) = 0.5 * base * (1 + cos(pi * e / (total - 1))), e in
/// [0, total). Matches the paper's schedule: base lr at epoch 0 and exactly
/// 0 at the LAST epoch (e = total - 1). Dividing by `total` instead — the
/// old off-by-one — left the final epoch with a small nonzero lr.
[[nodiscard]] float CosineDecayLr(float base_lr, std::int64_t epoch, std::int64_t total_epochs);

}  // namespace predtop::nn

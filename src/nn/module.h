#pragma once
// Base class for parameterized models. Modules own their parameter
// Variables; optimizers and checkpoint snapshots operate on the flat
// parameter list, while serialization walks the *named* parameter list
// (a state dict) so checkpoints are self-describing and loads can reject
// architecture mismatches by name instead of by position.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace predtop::nn {

/// One entry of a module's state dict: a dotted path ("layers.2.ffn_in.weight")
/// plus a handle to the parameter it names.
struct NamedParameter {
  std::string name;
  autograd::Variable* variable = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  /// Flat list of trainable parameters (stable order across calls).
  [[nodiscard]] virtual std::vector<autograd::Variable*> Parameters() = 0;

  /// Named parameters in Parameters() order. The default derives positional
  /// names ("param.0", ...); layers override with structural names so
  /// checkpoints survive refactors that keep the module graph shape.
  [[nodiscard]] virtual std::vector<NamedParameter> NamedParameters();

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t ParameterCount();

  void ZeroGrad();

  /// Copy parameter values out (for best-weights checkpoints).
  [[nodiscard]] std::vector<tensor::Tensor> SnapshotParameters();
  /// Restore a snapshot taken from the same module.
  void RestoreParameters(const std::vector<tensor::Tensor>& snapshot);

  /// Serialize / restore the state dict (see nn/serialize.h for the format).
  /// Load validates parameter names and shapes and throws on any mismatch.
  void Save(std::ostream& out);
  void Load(std::istream& in);
};

/// Append `child`'s named parameters under `prefix` + "." (helper for
/// composite modules building their own NamedParameters()).
void AppendNamedParameters(std::vector<NamedParameter>& out, const std::string& prefix,
                           Module& child);

}  // namespace predtop::nn

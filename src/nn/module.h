#pragma once
// Base class for parameterized models. Modules own their parameter
// Variables; optimizers and checkpoint snapshots operate on the flat
// parameter list.

#include <cstddef>
#include <vector>

#include "autograd/variable.h"

namespace predtop::nn {

class Module {
 public:
  virtual ~Module() = default;

  /// Flat list of trainable parameters (stable order across calls).
  [[nodiscard]] virtual std::vector<autograd::Variable*> Parameters() = 0;

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t ParameterCount();

  void ZeroGrad();

  /// Copy parameter values out (for best-weights checkpoints).
  [[nodiscard]] std::vector<tensor::Tensor> SnapshotParameters();
  /// Restore a snapshot taken from the same module.
  void RestoreParameters(const std::vector<tensor::Tensor>& snapshot);
};

}  // namespace predtop::nn

#pragma once
// Tape-free inference support: the per-thread InferenceContext (a tensor
// arena), the global parameter-mutation epoch that invalidates cached packed
// weights, and arena kernels that mirror the training kernels' math exactly.
//
// Parity contract: the parity tests assert InferForward matches the autograd
// Forward to <= 1e-6 relative. Most kernels here reproduce the training
// forward exactly (same loop order, same branch structure, same UsePackedGemm
// dispatch), so their outputs match bit-for-bit. A few deliberately reorder
// float math for speed inside that tolerance — SIMD lane-split reductions in
// LayerNorm, the attention q-side scale fold, and deferred softmax
// normalization — each worth a full matrix pass and each ~1e-7 relative.
//
// Threading/invalidation model:
//  - One InferenceContext (arena) per thread via ThreadLocalInferenceContext;
//    allocation is lock-free and Reset() at the start of each forward.
//  - Parameter mutation (Adam::Step, Module::RestoreParameters,
//    ReadStateDict) bumps the process-wide ParameterEpoch; per-Linear packed
//    weights record the epoch at pack time and repack lazily when stale.
//    Concurrent *inference* is supported; mutating parameters concurrently
//    with inference on the same module is not (same rule as the tape path).

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/arena.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace predtop::nn {

/// Process-wide monotonic counter of in-place parameter mutations. Starts at
/// 1 so "epoch 0" is always stale.
[[nodiscard]] std::uint64_t ParameterEpoch() noexcept;
/// Call after mutating any parameter Variable's value in place outside the
/// optimizer / snapshot / state-dict paths (those bump it themselves).
void BumpParameterEpoch() noexcept;

/// Per-forward state of the tape-free path. Today this is the activation
/// arena; it also gives fast-path signatures room to grow without touching
/// every layer again.
class InferenceContext {
 public:
  InferenceContext() = default;

  [[nodiscard]] tensor::Arena& arena() noexcept { return arena_; }

  /// Epoch-reset the arena; call once at the start of each model forward.
  void BeginForward() { arena_.Reset(); }

 private:
  tensor::Arena arena_;
};

/// The calling thread's context. Workers of serve::PredictionService's
/// PredictMany fan-out each land on their own instance, which is what makes
/// the arena lock-free.
[[nodiscard]] InferenceContext& ThreadLocalInferenceContext();

namespace infer {

using tensor::ConstMat;
using tensor::MatRef;

/// 2-D tensor view (throws on other ranks).
[[nodiscard]] ConstMat View(const tensor::Tensor& t);

// Kernels allocating from ctx's arena. "InPlace" variants overwrite their
// first argument; training always materializes a fresh tensor, but the
// element values are identical, which is all parity needs.

/// Mirrors tensor::MatMul including its narrow-output and packed dispatch.
[[nodiscard]] MatRef MatMul(InferenceContext& ctx, ConstMat a, ConstMat b);
[[nodiscard]] MatRef Transpose(InferenceContext& ctx, ConstMat a);
void AddInPlace(MatRef a, ConstMat b);
void ScaleInPlace(MatRef a, float s);
void ReluInPlace(MatRef a);
void LeakyReluInPlace(MatRef a, float negative_slope);
void AddRowVectorInPlace(MatRef m, const tensor::Tensor& bias);
/// Mirrors tensor::RowSoftmax (additive_mask nullable; (n,n) 0/-inf).
[[nodiscard]] MatRef RowSoftmax(InferenceContext& ctx, ConstMat logits,
                                const tensor::Tensor* additive_mask);
/// Deferred-normalization softmax for the attention fast path: `weights`
/// holds the unnormalized exp(v - rowmax) terms and `inv_sum` the per-row
/// 1/sum (exactly 0 for fully masked rows, whose weight rows are zeroed).
/// softmax(v) == weights * inv_sum row-wise; deferring lets attention scale
/// its (n, head_dim) output instead of the (n, n) weight matrix.
struct DeferredSoftmax {
  MatRef weights;  // (n, n)
  MatRef inv_sum;  // (n, 1)
};
[[nodiscard]] DeferredSoftmax RowSoftmaxDeferred(InferenceContext& ctx, ConstMat logits,
                                                 const tensor::Tensor* additive_mask);
/// Mirrors autograd::LayerNorm's forward.
[[nodiscard]] MatRef LayerNorm(InferenceContext& ctx, ConstMat x, const tensor::Tensor& gain,
                               const tensor::Tensor& bias, float eps = 1e-5f);
[[nodiscard]] MatRef SliceCols(InferenceContext& ctx, ConstMat x, std::int64_t start,
                               std::int64_t count);
[[nodiscard]] MatRef ConcatCols(InferenceContext& ctx, std::span<const ConstMat> parts);
[[nodiscard]] MatRef GlobalAddPool(InferenceContext& ctx, ConstMat x);
[[nodiscard]] MatRef SpMM(InferenceContext& ctx, const tensor::Csr& a, ConstMat x);
[[nodiscard]] MatRef IndexSelectRows(InferenceContext& ctx, ConstMat x,
                                     const std::vector<std::int32_t>& indices);
[[nodiscard]] MatRef SegmentSoftmax(InferenceContext& ctx, ConstMat x,
                                    const std::vector<std::int32_t>& segment_ids,
                                    std::int64_t num_segments);
[[nodiscard]] MatRef SegmentSum(InferenceContext& ctx, ConstMat x,
                                const std::vector<std::int32_t>& segment_ids,
                                std::int64_t num_segments);
/// x(m,c) *= s(m,1) row-wise.
void RowScaleInPlace(MatRef x, ConstMat s);

}  // namespace infer

}  // namespace predtop::nn

#include "nn/attention.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace predtop::nn {

using autograd::Variable;

namespace {

/// C = a * bt^T without materializing the transpose when the shape takes the
/// packed tier (PackBTransposedInto builds the identical pack straight from
/// the (n, k) layout, so the result matches the training path bit for bit).
/// Small shapes fall back to transpose + infer::MatMul, which mirrors the
/// training dispatch exactly.
tensor::MatRef MatMulTransposedB(InferenceContext& ctx, tensor::ConstMat a,
                                 tensor::ConstMat bt) {
  const std::int64_t m = a.rows, k = a.cols, n = bt.rows;
  if (k != bt.cols) {
    throw std::invalid_argument("MatMulTransposedB: inner dimension mismatch");
  }
  if (tensor::UsePackedGemm(m, k, n)) {
    thread_local tensor::PackedB scratch;
    tensor::PackBTransposedInto(bt.data, k, n, scratch);
    tensor::MatRef c = ctx.arena().Alloc(m, n);
    tensor::MatMulPackedInto(a.data, m, scratch, c.data);
    return c;
  }
  return infer::MatMul(ctx, a, infer::Transpose(ctx, bt));
}

}  // namespace

MultiheadMaskedAttention::MultiheadMaskedAttention(std::int64_t dim, std::int64_t heads,
                                                   util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(heads > 0 ? dim / heads : 0),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  if (heads <= 0 || dim % heads != 0) {
    throw std::invalid_argument("MultiheadMaskedAttention: dim must be divisible by heads");
  }
}

Variable MultiheadMaskedAttention::Forward(const Variable& x,
                                           const tensor::Tensor& additive_mask) const {
  const std::int64_t n = x.value().dim(0);
  if (additive_mask.rank() != 2 || additive_mask.dim(0) != n || additive_mask.dim(1) != n) {
    throw std::invalid_argument("MultiheadMaskedAttention: mask must be (n, n)");
  }
  const Variable q = wq_.Forward(x);
  const Variable k = wk_.Forward(x);
  const Variable v = wv_.Forward(x);
  const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<Variable> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(heads_));
  for (std::int64_t h = 0; h < heads_; ++h) {
    const std::int64_t off = h * head_dim_;
    const Variable qh = autograd::SliceCols(q, off, head_dim_);
    const Variable kh = autograd::SliceCols(k, off, head_dim_);
    const Variable vh = autograd::SliceCols(v, off, head_dim_);
    const Variable logits =
        autograd::Scale(autograd::MatMul(qh, autograd::Transpose(kh)), inv_sqrt_dk);
    const Variable attn = autograd::MaskedRowSoftmax(logits, additive_mask);
    head_outputs.push_back(autograd::MatMul(attn, vh));
  }
  const Variable merged = autograd::ConcatCols(head_outputs);
  return wo_.Forward(merged);
}

tensor::MatRef MultiheadMaskedAttention::InferForward(tensor::ConstMat x,
                                                      const tensor::Tensor* additive_mask,
                                                      InferenceContext& ctx) const {
  const std::int64_t n = x.rows;
  if (additive_mask != nullptr &&
      (additive_mask->rank() != 2 || additive_mask->dim(0) != n ||
       additive_mask->dim(1) != n)) {
    throw std::invalid_argument("MultiheadMaskedAttention: mask must be (n, n)");
  }
  const tensor::MatRef q = wq_.InferForward(x, ctx);
  const tensor::MatRef k = wk_.InferForward(x, ctx);
  const tensor::MatRef v = wv_.InferForward(x, ctx);
  const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // Fold the 1/sqrt(dk) scale into q once: (s*q)k^T instead of s*(qk^T)
  // saves a full (n, n) pass per head at the cost of one extra rounding per
  // logit (~1e-7 relative), inside the 1e-6 parity contract.
  infer::ScaleInPlace(q, inv_sqrt_dk);

  // Strided fast path: when both per-head multiplies take the packed tier,
  // read each head's q/k/v columns in place (strided packs, no SliceCols
  // copies), defer softmax normalization to the (n, head_dim) output, and
  // write each head straight into its column block of the merged matrix (no
  // ConcatCols). Gated on the same UsePackedGemm the training path dispatches
  // on so small graphs keep the bit-exact slice-based path below.
  if (tensor::UsePackedGemm(n, head_dim_, n) && tensor::UsePackedGemm(n, n, head_dim_)) {
    tensor::MatRef merged = ctx.arena().Alloc(n, dim_);
    thread_local tensor::PackedB scratch;
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t off = h * head_dim_;
      // logits = qh * kh^T, both read at column offset `off` with stride dim_.
      tensor::PackBTransposedInto(k.data + off, head_dim_, n, scratch, dim_);
      tensor::MatRef logits = ctx.arena().Alloc(n, n);
      tensor::MatMulPackedStridedInto(q.data + off, n, dim_, scratch, logits.data, n);
      const infer::DeferredSoftmax ds = infer::RowSoftmaxDeferred(ctx, logits, additive_mask);
      // merged[:, off:off+head_dim] = (weights * vh) scaled row-wise by
      // 1/rowsum — normalizing head_dim columns instead of n.
      tensor::PackBInto(v.data + off, n, head_dim_, scratch, dim_);
      tensor::MatMulPackedStridedInto(ds.weights.data, n, n, scratch, merged.data + off,
                                      dim_);
      for (std::int64_t i = 0; i < n; ++i) {
        const float s = ds.inv_sum.data[i];
        float* row = merged.data + i * dim_ + off;
        for (std::int64_t j = 0; j < head_dim_; ++j) row[j] *= s;
      }
    }
    return wo_.InferForward(merged, ctx);
  }

  std::vector<tensor::ConstMat> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(heads_));
  for (std::int64_t h = 0; h < heads_; ++h) {
    const std::int64_t off = h * head_dim_;
    const tensor::MatRef qh = infer::SliceCols(ctx, q, off, head_dim_);
    const tensor::MatRef kh = infer::SliceCols(ctx, k, off, head_dim_);
    const tensor::MatRef vh = infer::SliceCols(ctx, v, off, head_dim_);
    const tensor::MatRef logits = MatMulTransposedB(ctx, qh, kh);
    const tensor::MatRef attn = infer::RowSoftmax(ctx, logits, additive_mask);
    head_outputs.push_back(infer::MatMul(ctx, attn, vh));
  }
  const tensor::MatRef merged = infer::ConcatCols(ctx, head_outputs);
  return wo_.InferForward(merged, ctx);
}

std::vector<Variable*> MultiheadMaskedAttention::Parameters() {
  std::vector<Variable*> out;
  for (auto* layer : {&wq_, &wk_, &wv_, &wo_}) {
    for (auto* p : layer->Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<NamedParameter> MultiheadMaskedAttention::NamedParameters() {
  std::vector<NamedParameter> out;
  AppendNamedParameters(out, "wq", wq_);
  AppendNamedParameters(out, "wk", wk_);
  AppendNamedParameters(out, "wv", wv_);
  AppendNamedParameters(out, "wo", wo_);
  return out;
}

}  // namespace predtop::nn

#include "nn/attention.h"

#include <cmath>
#include <stdexcept>

namespace predtop::nn {

using autograd::Variable;

MultiheadMaskedAttention::MultiheadMaskedAttention(std::int64_t dim, std::int64_t heads,
                                                   util::Rng& rng)
    : dim_(dim),
      heads_(heads),
      head_dim_(heads > 0 ? dim / heads : 0),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  if (heads <= 0 || dim % heads != 0) {
    throw std::invalid_argument("MultiheadMaskedAttention: dim must be divisible by heads");
  }
}

Variable MultiheadMaskedAttention::Forward(const Variable& x,
                                           const tensor::Tensor& additive_mask) const {
  const std::int64_t n = x.value().dim(0);
  if (additive_mask.rank() != 2 || additive_mask.dim(0) != n || additive_mask.dim(1) != n) {
    throw std::invalid_argument("MultiheadMaskedAttention: mask must be (n, n)");
  }
  const Variable q = wq_.Forward(x);
  const Variable k = wk_.Forward(x);
  const Variable v = wv_.Forward(x);
  const float inv_sqrt_dk = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<Variable> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(heads_));
  for (std::int64_t h = 0; h < heads_; ++h) {
    const std::int64_t off = h * head_dim_;
    const Variable qh = autograd::SliceCols(q, off, head_dim_);
    const Variable kh = autograd::SliceCols(k, off, head_dim_);
    const Variable vh = autograd::SliceCols(v, off, head_dim_);
    const Variable logits =
        autograd::Scale(autograd::MatMul(qh, autograd::Transpose(kh)), inv_sqrt_dk);
    const Variable attn = autograd::MaskedRowSoftmax(logits, additive_mask);
    head_outputs.push_back(autograd::MatMul(attn, vh));
  }
  const Variable merged = autograd::ConcatCols(head_outputs);
  return wo_.Forward(merged);
}

std::vector<Variable*> MultiheadMaskedAttention::Parameters() {
  std::vector<Variable*> out;
  for (auto* layer : {&wq_, &wk_, &wv_, &wo_}) {
    for (auto* p : layer->Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<NamedParameter> MultiheadMaskedAttention::NamedParameters() {
  std::vector<NamedParameter> out;
  AppendNamedParameters(out, "wq", wq_);
  AppendNamedParameters(out, "wk", wk_);
  AppendNamedParameters(out, "wv", wv_);
  AppendNamedParameters(out, "wo", wo_);
  return out;
}

}  // namespace predtop::nn

#include "nn/infer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "tensor/fused.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace predtop::nn {

namespace {

std::atomic<std::uint64_t> g_parameter_epoch{1};

}  // namespace

std::uint64_t ParameterEpoch() noexcept {
  return g_parameter_epoch.load(std::memory_order_acquire);
}

void BumpParameterEpoch() noexcept {
  g_parameter_epoch.fetch_add(1, std::memory_order_acq_rel);
}

InferenceContext& ThreadLocalInferenceContext() {
  thread_local InferenceContext ctx;
  return ctx;
}

namespace infer {

ConstMat View(const tensor::Tensor& t) {
  if (t.rank() != 2) throw std::invalid_argument("infer::View: tensor must be 2-D");
  return ConstMat{t.data().data(), t.dim(0), t.dim(1)};
}

MatRef MatMul(InferenceContext& ctx, ConstMat a, ConstMat b) {
  if (b.rows != a.cols) throw std::invalid_argument("infer::MatMul: inner dimension mismatch");
  const std::int64_t m = a.rows, k = a.cols, n = b.cols;
  if (tensor::UsePackedGemm(m, k, n)) {
    // Same per-thread pack scratch idiom as tensor::MatMul — and literally
    // the same kernel, so the packed tier stays bit-identical to training.
    thread_local tensor::PackedB scratch;
    tensor::PackBInto(b.data, k, n, scratch);
    MatRef c = ctx.arena().Alloc(m, n);
    tensor::MatMulPackedInto(a.data, m, scratch, c.data);
    return c;
  }
  if (n < 16 && k >= 16) {
    // Mirror of the narrow-output branch: transpose B, simd::Dot over k.
    MatRef bt = Transpose(ctx, b);
    MatRef c = ctx.arena().Alloc(m, n);
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = a.data + i * k;
      float* crow = c.data + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] = tensor::simd::Dot(arow, bt.data + j * k, k);
      }
    }
    return c;
  }
  MatRef c = ctx.arena().AllocZeroed(m, n);
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a.data + i * k;
    float* crow = c.data + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // same zero-row skip as the training kernel
      const float* brow = b.data + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

MatRef Transpose(InferenceContext& ctx, ConstMat a) {
  MatRef out = ctx.arena().Alloc(a.cols, a.rows);
  for (std::int64_t i = 0; i < a.rows; ++i) {
    for (std::int64_t j = 0; j < a.cols; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

void AddInPlace(MatRef a, ConstMat b) {
  if (a.rows != b.rows || a.cols != b.cols) {
    throw std::invalid_argument("infer::AddInPlace: shape mismatch");
  }
  const std::int64_t total = a.size();
  for (std::int64_t i = 0; i < total; ++i) a.data[i] += b.data[i];
}

void ScaleInPlace(MatRef a, float s) {
  const std::int64_t total = a.size();
  for (std::int64_t i = 0; i < total; ++i) a.data[i] *= s;
}

void ReluInPlace(MatRef a) {
  const std::int64_t total = a.size();
  for (std::int64_t i = 0; i < total; ++i) a.data[i] = a.data[i] > 0.0f ? a.data[i] : 0.0f;
}

void LeakyReluInPlace(MatRef a, float negative_slope) {
  const std::int64_t total = a.size();
  for (std::int64_t i = 0; i < total; ++i) {
    a.data[i] = a.data[i] > 0.0f ? a.data[i] : negative_slope * a.data[i];
  }
}

void AddRowVectorInPlace(MatRef m, const tensor::Tensor& bias) {
  if (bias.rank() != 1 || bias.dim(0) != m.cols) {
    throw std::invalid_argument("infer::AddRowVectorInPlace: bias shape mismatch");
  }
  const float* pb = bias.data().data();
  for (std::int64_t i = 0; i < m.rows; ++i) {
    float* row = m.data + i * m.cols;
    for (std::int64_t j = 0; j < m.cols; ++j) row[j] += pb[j];
  }
}

MatRef RowSoftmax(InferenceContext& ctx, ConstMat logits, const tensor::Tensor* additive_mask) {
  const std::int64_t rows = logits.rows, cols = logits.cols;
  if (additive_mask != nullptr &&
      (additive_mask->rank() != 2 || additive_mask->dim(0) != rows ||
       additive_mask->dim(1) != cols)) {
    throw std::invalid_argument("infer::RowSoftmax: mask shape mismatch");
  }
  MatRef out = ctx.arena().Alloc(rows, cols);
  const float* pm = additive_mask != nullptr ? additive_mask->data().data() : nullptr;
  constexpr float kNegInfCut = -1e30f;
  // Vectorized but bit-identical to the training-path softmax: max is exactly
  // associative, and the fused shift+exp pass applies the same per-element
  // float sequence as the two-pass formulation (see ExpShiftedNonPositiveN).
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* lrow = logits.data + i * cols;
    const float* mrow = pm != nullptr ? pm + i * cols : nullptr;
    float* orow = out.data + i * cols;
    const float maxv = tensor::simd::MaskedRowMax(lrow, mrow, cols);
    if (maxv < kNegInfCut) {  // fully masked row
      std::fill(orow, orow + cols, 0.0f);
      continue;
    }
    tensor::simd::ExpShiftedNonPositiveN(lrow, mrow, maxv, orow, cols);
    const float inv = 1.0f / tensor::simd::Sum(orow, cols);
    for (std::int64_t j = 0; j < cols; ++j) orow[j] *= inv;
  }
  return out;
}

DeferredSoftmax RowSoftmaxDeferred(InferenceContext& ctx, ConstMat logits,
                                   const tensor::Tensor* additive_mask) {
  const std::int64_t rows = logits.rows, cols = logits.cols;
  if (additive_mask != nullptr &&
      (additive_mask->rank() != 2 || additive_mask->dim(0) != rows ||
       additive_mask->dim(1) != cols)) {
    throw std::invalid_argument("infer::RowSoftmaxDeferred: mask shape mismatch");
  }
  MatRef weights = ctx.arena().Alloc(rows, cols);
  MatRef inv_sum = ctx.arena().Alloc(rows, 1);
  const float* pm = additive_mask != nullptr ? additive_mask->data().data() : nullptr;
  // Deferred normalization makes the softmax shift-invariant, so the cheaper
  // unmasked row max works as the exp shift (it bounds the masked max from
  // above, keeping every exp argument nonpositive) and the max pass skips the
  // mask load+add entirely. Masked lanes still get -inf in the exp pass and
  // come out exactly 0. The two passes run as separate phases — alternating
  // the max and exp kernels row by row measures ~50% slower than streaming
  // each one across the whole matrix.
  MatRef maxes = ctx.arena().Alloc(rows, 1);
  for (std::int64_t i = 0; i < rows; ++i) {
    maxes.data[i] = tensor::simd::MaskedRowMax(logits.data + i * cols, nullptr, cols);
  }
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* lrow = logits.data + i * cols;
    const float* mrow = pm != nullptr ? pm + i * cols : nullptr;
    float* orow = weights.data + i * cols;
    const float total =
        tensor::simd::ExpShiftedNonPositiveSumN(lrow, mrow, maxes.data[i], orow, cols);
    if (total > 0.0f) {
      inv_sum.data[i] = 1.0f / total;
      continue;
    }
    // Rare: the row is fully masked, or every open lane underflowed against
    // an unmasked max dominated by a masked lane. The retry must *check* the
    // mask rather than add it: recomputing a max over lrow[j] + mrow[j]
    // turns an overflowed +inf logit under a -inf mask lane into NaN, which
    // survives the fully-masked test and poisons the weights. The shared
    // kernel shifts by the max over open lanes only and zeroes the rest
    // (fully masked rows get all-zero weights and inv 0, so 0*inv stays 0).
    inv_sum.data[i] = tensor::fused::MaskedSoftmaxRetryRow(lrow, mrow, orow, cols);
  }
  return {weights, inv_sum};
}

MatRef LayerNorm(InferenceContext& ctx, ConstMat x, const tensor::Tensor& gain,
                 const tensor::Tensor& bias, float eps) {
  const std::int64_t rows = x.rows, cols = x.cols;
  if (gain.rank() != 1 || gain.dim(0) != cols || bias.rank() != 1 || bias.dim(0) != cols) {
    throw std::invalid_argument("infer::LayerNorm: gain/bias must be 1-D of width cols");
  }
  MatRef out = ctx.arena().Alloc(rows, cols);
  const float* pgain = gain.data().data();
  const float* pbias = bias.data().data();
  // SIMD lane-split reductions for mean/var: they can diverge from the
  // training path's sequential sums in the last float bits (~1e-7 relative),
  // well inside the 1e-6 parity contract the inference path is tested to.
  for (std::int64_t i = 0; i < rows; ++i) {
    const float* xrow = x.data + i * cols;
    const float mean = tensor::simd::Sum(xrow, cols) / static_cast<float>(cols);
    const float var =
        tensor::simd::SumSquaredDiff(xrow, mean, cols) / static_cast<float>(cols);
    const float inv = 1.0f / std::sqrt(var + eps);
    float* orow = out.data + i * cols;
    for (std::int64_t j = 0; j < cols; ++j) {
      const float xh = (xrow[j] - mean) * inv;
      orow[j] = xh * pgain[j] + pbias[j];
    }
  }
  return out;
}

MatRef SliceCols(InferenceContext& ctx, ConstMat x, std::int64_t start, std::int64_t count) {
  if (start < 0 || count <= 0 || start + count > x.cols) {
    throw std::invalid_argument("infer::SliceCols: range out of bounds");
  }
  MatRef out = ctx.arena().Alloc(x.rows, count);
  for (std::int64_t i = 0; i < x.rows; ++i) {
    std::memcpy(out.data + i * count, x.data + i * x.cols + start,
                static_cast<std::size_t>(count) * sizeof(float));
  }
  return out;
}

MatRef ConcatCols(InferenceContext& ctx, std::span<const ConstMat> parts) {
  if (parts.empty()) throw std::invalid_argument("infer::ConcatCols: no inputs");
  const std::int64_t rows = parts.front().rows;
  std::int64_t total = 0;
  for (const ConstMat& p : parts) {
    if (p.rows != rows) throw std::invalid_argument("infer::ConcatCols: row count mismatch");
    total += p.cols;
  }
  MatRef out = ctx.arena().Alloc(rows, total);
  std::int64_t off = 0;
  for (const ConstMat& p : parts) {
    for (std::int64_t i = 0; i < rows; ++i) {
      std::memcpy(out.data + i * total + off, p.data + i * p.cols,
                  static_cast<std::size_t>(p.cols) * sizeof(float));
    }
    off += p.cols;
  }
  return out;
}

MatRef GlobalAddPool(InferenceContext& ctx, ConstMat x) {
  MatRef out = ctx.arena().AllocZeroed(1, x.cols);
  for (std::int64_t i = 0; i < x.rows; ++i) {
    const float* xrow = x.data + i * x.cols;
    for (std::int64_t j = 0; j < x.cols; ++j) out.data[j] += xrow[j];
  }
  return out;
}

MatRef SpMM(InferenceContext& ctx, const tensor::Csr& a, ConstMat x) {
  if (x.rows != a.cols) throw std::invalid_argument("infer::SpMM: dense operand shape mismatch");
  const std::int64_t n = x.cols;
  MatRef y = ctx.arena().AllocZeroed(a.rows, n);
  for (std::int64_t i = 0; i < a.rows; ++i) {
    float* yrow = y.data + i * n;
    for (std::int64_t p = a.row_ptr[static_cast<std::size_t>(i)];
         p < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++p) {
      const float av = a.values[static_cast<std::size_t>(p)];
      const float* xrow =
          x.data + static_cast<std::int64_t>(a.col_idx[static_cast<std::size_t>(p)]) * n;
      for (std::int64_t j = 0; j < n; ++j) yrow[j] += av * xrow[j];
    }
  }
  return y;
}

MatRef IndexSelectRows(InferenceContext& ctx, ConstMat x,
                       const std::vector<std::int32_t>& indices) {
  const auto m = static_cast<std::int64_t>(indices.size());
  MatRef out = ctx.arena().Alloc(m, x.cols);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t src = indices[static_cast<std::size_t>(i)];
    if (src < 0 || src >= x.rows) {
      throw std::out_of_range("infer::IndexSelectRows: index out of range");
    }
    std::memcpy(out.data + i * x.cols, x.data + src * x.cols,
                static_cast<std::size_t>(x.cols) * sizeof(float));
  }
  return out;
}

MatRef SegmentSoftmax(InferenceContext& ctx, ConstMat x,
                      const std::vector<std::int32_t>& segment_ids,
                      std::int64_t num_segments) {
  if (static_cast<std::int64_t>(segment_ids.size()) != x.rows) {
    throw std::invalid_argument("infer::SegmentSoftmax: one segment id per row required");
  }
  const std::int64_t rows = x.rows, cols = x.cols;
  // Same three passes (max, exp+denom, normalize) and the same std::exp as
  // the autograd forward.
  MatRef maxv = ctx.arena().Alloc(num_segments, cols);
  std::fill(maxv.data, maxv.data + maxv.size(), -std::numeric_limits<float>::infinity());
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t s = segment_ids[static_cast<std::size_t>(i)];
    if (s < 0 || s >= num_segments) {
      throw std::out_of_range("infer::SegmentSoftmax: segment id out of range");
    }
    for (std::int64_t j = 0; j < cols; ++j) {
      maxv.at(s, j) = std::max(maxv.at(s, j), x.at(i, j));
    }
  }
  MatRef expd = ctx.arena().Alloc(rows, cols);
  MatRef denom = ctx.arena().AllocZeroed(num_segments, cols);
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t s = segment_ids[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) {
      const float e = std::exp(x.at(i, j) - maxv.at(s, j));
      expd.at(i, j) = e;
      denom.at(s, j) += e;
    }
  }
  MatRef out = ctx.arena().Alloc(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::int32_t s = segment_ids[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < cols; ++j) out.at(i, j) = expd.at(i, j) / denom.at(s, j);
  }
  return out;
}

MatRef SegmentSum(InferenceContext& ctx, ConstMat x,
                  const std::vector<std::int32_t>& segment_ids, std::int64_t num_segments) {
  if (static_cast<std::int64_t>(segment_ids.size()) != x.rows) {
    throw std::invalid_argument("infer::SegmentSum: one segment id per row required");
  }
  MatRef out = ctx.arena().AllocZeroed(num_segments, x.cols);
  for (std::size_t i = 0; i < segment_ids.size(); ++i) {
    const std::int32_t s = segment_ids[i];
    if (s < 0 || s >= num_segments) {
      throw std::out_of_range("infer::SegmentSum: segment id out of range");
    }
    const float* xrow = x.data + static_cast<std::int64_t>(i) * x.cols;
    float* orow = out.data + s * x.cols;
    for (std::int64_t j = 0; j < x.cols; ++j) orow[j] += xrow[j];
  }
  return out;
}

void RowScaleInPlace(MatRef x, ConstMat s) {
  if (s.cols != 1 || s.rows != x.rows) {
    throw std::invalid_argument("infer::RowScaleInPlace: expected x(m,c) and s(m,1)");
  }
  for (std::int64_t i = 0; i < x.rows; ++i) {
    const float sc = s.data[i];
    float* row = x.data + i * x.cols;
    for (std::int64_t j = 0; j < x.cols; ++j) row[j] *= sc;
  }
}

}  // namespace infer

}  // namespace predtop::nn

#include "nn/trainer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "autograd/functions.h"
#include "util/logging.h"

namespace predtop::nn {

using autograd::Variable;

namespace {

Variable SampleLoss(LossKind kind, const Variable& pred, float target) {
  return kind == LossKind::kMae ? autograd::AbsError(pred, target)
                                : autograd::SquaredError(pred, target);
}

}  // namespace

TrainResult Trainer::Fit(Module& model,
                         const std::function<Variable(std::size_t)>& forward,
                         std::span<const float> targets,
                         std::span<const std::size_t> train_indices,
                         std::span<const std::size_t> val_indices) const {
  if (train_indices.empty()) throw std::invalid_argument("Trainer::Fit: empty training set");
  TrainResult result;
  Adam optimizer(model, config_.adam);
  util::Rng rng(config_.shuffle_seed);
  std::vector<std::size_t> order(train_indices.begin(), train_indices.end());

  std::vector<tensor::Tensor> best_weights = model.SnapshotParameters();
  double best_val = std::numeric_limits<double>::infinity();
  std::int64_t best_epoch = -1;

  for (std::int64_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.Shuffle(std::span<std::size_t>(order));
    const float lr = CosineDecayLr(config_.base_lr, epoch, config_.max_epochs);
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config_.batch_size));
      model.ZeroGrad();
      Variable batch_loss;
      for (std::size_t i = start; i < end; ++i) {
        const std::size_t idx = order[i];
        const Variable loss = SampleLoss(config_.loss, forward(idx), targets[idx]);
        batch_loss = batch_loss.defined() ? autograd::Add(batch_loss, loss) : loss;
      }
      const float inv = 1.0f / static_cast<float>(end - start);
      batch_loss = autograd::Scale(batch_loss, inv);
      autograd::Backward(batch_loss);
      optimizer.Step(lr);
      epoch_loss += static_cast<double>(batch_loss.value().data()[0]) *
                    static_cast<double>(end - start);
    }
    epoch_loss /= static_cast<double>(order.size());
    result.train_loss_history.push_back(epoch_loss);

    const double val_loss =
        val_indices.empty() ? epoch_loss : Evaluate(forward, targets, val_indices);
    result.val_loss_history.push_back(val_loss);
    ++result.epochs_run;

    if (val_loss < best_val) {
      best_val = val_loss;
      best_epoch = epoch;
      best_weights = model.SnapshotParameters();
    }
    if (config_.log_every > 0 && epoch % config_.log_every == 0) {
      PREDTOP_LOG_DEBUG << "epoch " << epoch << " train=" << epoch_loss
                        << " val=" << val_loss << " lr=" << lr;
    }
    if (epoch - best_epoch >= config_.patience) break;  // early stopping
  }

  model.RestoreParameters(best_weights);
  result.best_epoch = best_epoch;
  result.best_val_loss = best_val;
  return result;
}

double Trainer::Evaluate(const std::function<Variable(std::size_t)>& forward,
                         std::span<const float> targets,
                         std::span<const std::size_t> indices) const {
  if (indices.empty()) return 0.0;
  double total = 0.0;
  for (const std::size_t idx : indices) {
    const float pred = forward(idx).value().data()[0];
    const float diff = pred - targets[idx];
    total += config_.loss == LossKind::kMae ? std::fabs(diff) : diff * diff;
  }
  return total / static_cast<double>(indices.size());
}

DataSplit SplitDataset(std::size_t n, double train_fraction, double val_fraction,
                       util::Rng& rng) {
  if (train_fraction < 0.0 || val_fraction < 0.0 || train_fraction + val_fraction > 1.0) {
    throw std::invalid_argument("SplitDataset: invalid fractions");
  }
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.Shuffle(std::span<std::size_t>(idx));
  const auto n_train = static_cast<std::size_t>(std::llround(train_fraction * static_cast<double>(n)));
  const auto n_val = static_cast<std::size_t>(std::llround(val_fraction * static_cast<double>(n)));
  DataSplit split;
  split.train.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(std::min(n, n_train)));
  const std::size_t val_end = std::min(n, n_train + n_val);
  split.validation.assign(idx.begin() + static_cast<std::ptrdiff_t>(std::min(n, n_train)),
                          idx.begin() + static_cast<std::ptrdiff_t>(val_end));
  split.test.assign(idx.begin() + static_cast<std::ptrdiff_t>(val_end), idx.end());
  return split;
}

}  // namespace predtop::nn

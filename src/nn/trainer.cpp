#include "nn/trainer.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <future>
#include <limits>
#include <optional>
#include <stdexcept>

#include "autograd/engine.h"
#include "autograd/functions.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace predtop::nn {

using autograd::Variable;

namespace {

Variable SampleLoss(LossKind kind, const Variable& pred, float target) {
  return kind == LossKind::kMae ? autograd::AbsError(pred, target)
                                : autograd::SquaredError(pred, target);
}

bool AllFinite(const tensor::Tensor& t) {
  for (const float x : t.data()) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// Fixed-order chunked reduction of per-shard gradient buffers into
/// shards[0] — the reduce-scatter half of a ring all-reduce, specialized to
/// shared memory. Element j always accumulates shards 1..used-1 in that
/// order, so chunking (the parallelism axis) can never change a per-element
/// addition order: the reduced values are identical for every pool size,
/// including no pool at all.
void ReduceShardGrads(std::vector<std::vector<tensor::Tensor>>& shards, std::size_t used,
                      util::ThreadPool* pool) {
  if (used <= 1) return;
  constexpr std::size_t kChunk = 4096;
  struct Chunk {
    std::size_t param;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Chunk> chunks;
  for (std::size_t p = 0; p < shards[0].size(); ++p) {
    const std::size_t n = shards[0][p].numel();
    for (std::size_t b = 0; b < n; b += kChunk) {
      chunks.push_back({p, b, std::min(n, b + kChunk)});
    }
  }
  const auto reduce_chunk = [&](std::size_t c) {
    const auto [param, begin, end] = chunks[c];
    const auto acc = shards[0][param].data();
    for (std::size_t s = 1; s < used; ++s) {
      const auto src = shards[s][param].data();
      for (std::size_t j = begin; j < end; ++j) acc[j] += src[j];
    }
  };
  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelFor(chunks.size(), reduce_chunk);
  } else {
    for (std::size_t c = 0; c < chunks.size(); ++c) reduce_chunk(c);
  }
}

}  // namespace

TrainResult Trainer::Fit(Module& model,
                         const std::function<Variable(std::size_t)>& forward,
                         std::span<const float> targets,
                         std::span<const std::size_t> train_indices,
                         std::span<const std::size_t> val_indices) const {
  if (train_indices.empty()) throw std::invalid_argument("Trainer::Fit: empty training set");
  TrainResult result;
  Adam optimizer(model, config_.adam);
  util::Rng rng(config_.shuffle_seed);
  std::vector<std::size_t> order(train_indices.begin(), train_indices.end());

  const std::size_t threads =
      config_.threads <= 1 ? 1 : static_cast<std::size_t>(config_.threads);
  std::optional<util::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  const std::vector<Variable*> params = model.Parameters();
  // Per-shard gradient buffers, reused across batches. Shape-matched zero
  // tensors so BackwardInto always takes the accumulate path and a parameter
  // a shard never reaches simply stays zero.
  std::vector<std::vector<tensor::Tensor>> shard_grads(threads > 1 ? threads : 0);
  for (auto& shard : shard_grads) {
    shard.reserve(params.size());
    for (const auto* p : params) shard.emplace_back(p->value().shape());
  }

  std::vector<tensor::Tensor> best_weights = model.SnapshotParameters();
  double best_val = std::numeric_limits<double>::infinity();
  std::int64_t best_epoch = -1;

  for (std::int64_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    rng.Shuffle(std::span<std::size_t>(order));
    const float lr = CosineDecayLr(config_.base_lr, epoch, config_.max_epochs);
    double epoch_loss = 0.0;
    std::size_t applied_samples = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config_.batch_size));
      const std::size_t batch_n = end - start;
      const float inv = 1.0f / static_cast<float>(batch_n);
      double batch_mean = 0.0;
      bool applied = false;

      if (threads <= 1) {
        // Serial baseline: one loss tree per batch, one backward, one step.
        model.ZeroGrad();
        Variable batch_loss;
        for (std::size_t i = start; i < end; ++i) {
          const std::size_t idx = order[i];
          const Variable loss = SampleLoss(config_.loss, forward(idx), targets[idx]);
          batch_loss = batch_loss.defined() ? autograd::Add(batch_loss, loss) : loss;
        }
        batch_loss = autograd::Scale(batch_loss, inv);
        batch_mean = static_cast<double>(batch_loss.value().data()[0]);
        if (std::isfinite(batch_mean)) {
          autograd::Backward(batch_loss);
          applied = optimizer.Step(lr);  // refused if gradients went non-finite
        }
      } else {
        // Data-parallel: shard the batch contiguously, run per-sample
        // backwards into private per-shard buffers, reduce in fixed shard
        // order, install once. Bit-identical across runs for this thread
        // count: per-shard accumulation order is the shard's sample order,
        // and the cross-shard reduction order is fixed (see ReduceShardGrads).
        const std::size_t used = std::min(threads, batch_n);
        const std::size_t per_shard = (batch_n + used - 1) / used;
        for (std::size_t s = 0; s < used; ++s) {
          for (std::size_t p = 0; p < params.size(); ++p) {
            auto& buf = shard_grads[s][p];
            if (buf.numel() == 0) {
              buf = tensor::Tensor(params[p]->value().shape());  // re-arm after move
            } else {
              buf.Fill(0.0f);
            }
          }
        }
        std::vector<double> shard_sum(used, 0.0);
        std::vector<std::future<void>> futures;
        futures.reserve(used);
        for (std::size_t s = 0; s < used; ++s) {
          futures.push_back(pool_ptr->Submit([&, s] {
            const std::size_t lo = start + s * per_shard;
            const std::size_t hi = std::min(end, lo + per_shard);
            const std::span<tensor::Tensor> grads(shard_grads[s]);
            for (std::size_t i = lo; i < hi; ++i) {
              const std::size_t idx = order[i];
              const Variable loss = SampleLoss(config_.loss, forward(idx), targets[idx]);
              shard_sum[s] += static_cast<double>(loss.value().data()[0]);
              autograd::BackwardInto(autograd::Scale(loss, inv),
                                     std::span<Variable* const>(params), grads);
            }
          }));
        }
        // Wait for EVERY shard before letting an exception unwind: tasks
        // reference this frame's locals.
        std::exception_ptr error;
        for (auto& f : futures) {
          try {
            f.get();
          } catch (...) {
            if (!error) error = std::current_exception();
          }
        }
        if (error) std::rethrow_exception(error);

        double batch_sum = 0.0;
        for (std::size_t s = 0; s < used; ++s) batch_sum += shard_sum[s];
        batch_mean = batch_sum / static_cast<double>(batch_n);
        ReduceShardGrads(shard_grads, used, pool_ptr);
        bool finite = std::isfinite(batch_mean);
        for (std::size_t p = 0; finite && p < params.size(); ++p) {
          finite = AllFinite(shard_grads[0][p]);
        }
        if (finite) {
          for (std::size_t p = 0; p < params.size(); ++p) {
            params[p]->SetGrad(std::move(shard_grads[0][p]));
          }
          applied = optimizer.Step(lr);
        }
      }

      if (applied) {
        epoch_loss += batch_mean * static_cast<double>(batch_n);
        applied_samples += batch_n;
      } else {
        ++result.skipped_steps;  // weights and Adam moments untouched
      }
    }
    epoch_loss = applied_samples > 0
                     ? epoch_loss / static_cast<double>(applied_samples)
                     : std::numeric_limits<double>::quiet_NaN();
    result.train_loss_history.push_back(epoch_loss);

    const double val_loss = val_indices.empty()
                                ? epoch_loss
                                : EvaluateWith(forward, targets, val_indices, pool_ptr);
    result.val_loss_history.push_back(val_loss);
    ++result.epochs_run;

    if (val_loss < best_val) {  // NaN compares false: never becomes best
      best_val = val_loss;
      best_epoch = epoch;
      best_weights = model.SnapshotParameters();
    }
    if (config_.log_every > 0 && epoch % config_.log_every == 0) {
      PREDTOP_LOG_DEBUG << "epoch " << epoch << " train=" << epoch_loss
                        << " val=" << val_loss << " lr=" << lr;
    }
    if (epoch - best_epoch >= config_.patience) break;  // early stopping
  }

  model.RestoreParameters(best_weights);
  result.best_epoch = best_epoch;
  result.best_val_loss = best_val;
  return result;
}

double Trainer::Evaluate(const std::function<Variable(std::size_t)>& forward,
                         std::span<const float> targets,
                         std::span<const std::size_t> indices) const {
  return EvaluateWith(forward, targets, indices, nullptr);
}

double Trainer::EvaluateWith(const std::function<Variable(std::size_t)>& forward,
                             std::span<const float> targets,
                             std::span<const std::size_t> indices,
                             util::ThreadPool* pool) const {
  if (indices.empty()) return 0.0;
  std::vector<double> slots(indices.size());
  const auto body = [&](std::size_t k) {
    const std::size_t idx = indices[k];
    const float pred = forward(idx).value().data()[0];
    const float diff = pred - targets[idx];
    slots[k] = config_.loss == LossKind::kMae ? std::fabs(diff) : diff * diff;
  };
  if (pool != nullptr) {
    pool->ParallelFor(indices.size(), body);
  } else {
    for (std::size_t k = 0; k < indices.size(); ++k) body(k);
  }
  double total = 0.0;
  for (const double v : slots) total += v;  // fixed order: pool-independent
  return total / static_cast<double>(indices.size());
}

DataSplit SplitDataset(std::size_t n, double train_fraction, double val_fraction,
                       util::Rng& rng) {
  if (train_fraction < 0.0 || val_fraction < 0.0 || train_fraction + val_fraction > 1.0) {
    throw std::invalid_argument("SplitDataset: invalid fractions");
  }
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.Shuffle(std::span<std::size_t>(idx));
  auto n_train = static_cast<std::size_t>(std::llround(train_fraction * static_cast<double>(n)));
  // A positive train fraction must never round down to an empty train set
  // (e.g. n = 4, fraction = 0.1): Trainer::Fit rejects empty training sets.
  if (n > 0 && train_fraction > 0.0 && n_train == 0) n_train = 1;
  n_train = std::min(n, n_train);
  const auto n_val = static_cast<std::size_t>(std::llround(val_fraction * static_cast<double>(n)));
  DataSplit split;
  split.train.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_train));
  const std::size_t val_end = std::min(n, n_train + n_val);
  split.validation.assign(idx.begin() + static_cast<std::ptrdiff_t>(n_train),
                          idx.begin() + static_cast<std::ptrdiff_t>(val_end));
  split.test.assign(idx.begin() + static_cast<std::ptrdiff_t>(val_end), idx.end());
  return split;
}

}  // namespace predtop::nn

#pragma once
// Fully-connected layer and a small MLP helper.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "autograd/functions.h"
#include "nn/infer.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "util/rng.h"

namespace predtop::nn {

/// y = x W + b with W (in, out) Glorot-initialized.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
         bool with_bias = true);

  [[nodiscard]] autograd::Variable Forward(const autograd::Variable& x) const;

  /// Tape-free forward into ctx's arena, mirroring Forward()'s kernel
  /// dispatch exactly: the packed tier multiplies against a cached packed
  /// copy of the weight (rebuilt lazily when ParameterEpoch moves), the
  /// narrow-output tier against a cached W^T. Safe to call from many threads
  /// concurrently; the cache mutex is per-layer and only contended on the
  /// (rare) repack after a parameter mutation.
  [[nodiscard]] tensor::MatRef InferForward(tensor::ConstMat x, InferenceContext& ctx) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

  [[nodiscard]] std::int64_t InFeatures() const noexcept { return in_; }
  [[nodiscard]] std::int64_t OutFeatures() const noexcept { return out_; }

  /// Weight matrix handle (exposed for GAT attention vectors etc.).
  [[nodiscard]] autograd::Variable& Weight() noexcept { return weight_; }
  [[nodiscard]] const autograd::Variable& Weight() const noexcept { return weight_; }
  /// Bias handle, or nullptr for a bias-free layer.
  [[nodiscard]] const autograd::Variable* Bias() const noexcept {
    return bias_.defined() ? &bias_ : nullptr;
  }

  /// Immutable per-epoch derived forms of the weight; readers hold a
  /// shared_ptr so a concurrent repack can never free data under them. The
  /// reduced-precision panels (tensor::WeightPrec) are built alongside the
  /// fp32 pack, and `prec` records the tier they were built for so flipping
  /// PREDTOP_GEMM_PREC invalidates the snapshot like a parameter mutation.
  struct InferWeights {
    std::uint64_t epoch = 0;
    tensor::GemmPrec prec = tensor::GemmPrec::kFp32;
    tensor::PackedB pack;       // packed weight for the blocked GEMM tier
    tensor::PackedB16 pack16;   // bf16 panels (prec == kBf16 only)
    tensor::PackedB8 pack8;     // int8 panels + column scales (kInt8 only)
    tensor::Tensor weight_t;    // W^T for the narrow-output dot tier
  };

  /// Current weight snapshot (lazily rebuilt when ParameterEpoch or the
  /// precision tier moves). The compiled inference programs hold these per
  /// step so a warm forward revalidates one epoch load instead of taking
  /// every layer's cache mutex.
  [[nodiscard]] std::shared_ptr<const InferWeights> SnapshotInferWeights() const;

 private:
  // Heap-held so the mutex does not make Linear unmovable (Mlp stores
  // Linears by value).
  struct InferCache {
    std::mutex mutex;
    std::shared_ptr<const InferWeights> weights;
  };

  std::int64_t in_;
  std::int64_t out_;
  autograd::Variable weight_;
  autograd::Variable bias_;  // undefined when with_bias == false
  mutable std::unique_ptr<InferCache> infer_cache_ = std::make_unique<InferCache>();
};

/// Multi-layer perceptron: Linear -> ReLU -> ... -> Linear (no final
/// activation). `dims` lists layer widths including input and output, e.g.
/// {64, 64, 1} builds Linear(64,64)+ReLU+Linear(64,1). Used for the
/// regression head after pooling (paper §IV-B5).
class Mlp : public Module {
 public:
  Mlp(std::vector<std::int64_t> dims, util::Rng& rng);

  [[nodiscard]] autograd::Variable Forward(const autograd::Variable& x) const;

  /// Tape-free forward (Linear fast paths + in-place ReLU between layers).
  [[nodiscard]] tensor::MatRef InferForward(tensor::ConstMat x, InferenceContext& ctx) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

  /// Layer list (the compiled-program builder records one step per layer).
  [[nodiscard]] const std::vector<Linear>& Layers() const noexcept { return layers_; }

 private:
  std::vector<Linear> layers_;
};

}  // namespace predtop::nn

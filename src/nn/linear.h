#pragma once
// Fully-connected layer and a small MLP helper.

#include <cstdint>
#include <vector>

#include "autograd/functions.h"
#include "nn/module.h"
#include "util/rng.h"

namespace predtop::nn {

/// y = x W + b with W (in, out) Glorot-initialized.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, util::Rng& rng,
         bool with_bias = true);

  [[nodiscard]] autograd::Variable Forward(const autograd::Variable& x) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

  [[nodiscard]] std::int64_t InFeatures() const noexcept { return in_; }
  [[nodiscard]] std::int64_t OutFeatures() const noexcept { return out_; }

  /// Weight matrix handle (exposed for GAT attention vectors etc.).
  [[nodiscard]] autograd::Variable& Weight() noexcept { return weight_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  autograd::Variable weight_;
  autograd::Variable bias_;  // undefined when with_bias == false
};

/// Multi-layer perceptron: Linear -> ReLU -> ... -> Linear (no final
/// activation). `dims` lists layer widths including input and output, e.g.
/// {64, 64, 1} builds Linear(64,64)+ReLU+Linear(64,1). Used for the
/// regression head after pooling (paper §IV-B5).
class Mlp : public Module {
 public:
  Mlp(std::vector<std::int64_t> dims, util::Rng& rng);

  [[nodiscard]] autograd::Variable Forward(const autograd::Variable& x) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

 private:
  std::vector<Linear> layers_;
};

}  // namespace predtop::nn

#pragma once
// DAG Transformer layer (paper Fig. 4 / Luo et al. NeurIPS'23): a standard
// post-LN Transformer encoder block whose attention is restricted by a DAG
// reachability mask (DAGRA). Depth positional encodings (DAGPE) are added to
// the input embedding by the caller before the first layer.

#include <cstdint>

#include "nn/attention.h"

namespace predtop::nn {

class DagTransformerLayer : public Module {
 public:
  /// `ffn_mult` scales the feed-forward hidden width (ffn_mult * dim).
  DagTransformerLayer(std::int64_t dim, std::int64_t heads, std::int64_t ffn_mult,
                      util::Rng& rng);

  /// x: (n, dim); reachability mask: (n, n) additive. Returns (n, dim).
  [[nodiscard]] autograd::Variable Forward(const autograd::Variable& x,
                                           const tensor::Tensor& reachability_mask) const;

  /// Tape-free forward into ctx's arena; null mask = unrestricted attention.
  [[nodiscard]] tensor::MatRef InferForward(tensor::ConstMat x,
                                            const tensor::Tensor* reachability_mask,
                                            InferenceContext& ctx) const;

  [[nodiscard]] std::vector<autograd::Variable*> Parameters() override;
  [[nodiscard]] std::vector<NamedParameter> NamedParameters() override;

  // Block structure for the compiled-program builder (predtop::compile).
  [[nodiscard]] const MultiheadMaskedAttention& Attention() const noexcept {
    return attention_;
  }
  [[nodiscard]] const Linear& FfnIn() const noexcept { return ffn_in_; }
  [[nodiscard]] const Linear& FfnOut() const noexcept { return ffn_out_; }
  [[nodiscard]] const autograd::Variable& Norm1Gain() const noexcept { return norm1_gain_; }
  [[nodiscard]] const autograd::Variable& Norm1Bias() const noexcept { return norm1_bias_; }
  [[nodiscard]] const autograd::Variable& Norm2Gain() const noexcept { return norm2_gain_; }
  [[nodiscard]] const autograd::Variable& Norm2Bias() const noexcept { return norm2_bias_; }

 private:
  MultiheadMaskedAttention attention_;
  Linear ffn_in_;
  Linear ffn_out_;
  autograd::Variable norm1_gain_;
  autograd::Variable norm1_bias_;
  autograd::Variable norm2_gain_;
  autograd::Variable norm2_bias_;
};

}  // namespace predtop::nn

#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace predtop::nn {

namespace {

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw std::runtime_error("serialize: truncated stream");
  return value;
}

}  // namespace

void WriteTensor(std::ostream& out, const tensor::Tensor& t) {
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(t.rank()));
  for (const std::int64_t d : t.shape()) WritePod<std::int64_t>(out, d);
  const auto data = t.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

tensor::Tensor ReadTensor(std::istream& in) {
  const auto rank = ReadPod<std::uint32_t>(in);
  if (rank > 8) throw std::runtime_error("serialize: implausible tensor rank");
  tensor::Shape shape;
  for (std::uint32_t i = 0; i < rank; ++i) shape.push_back(ReadPod<std::int64_t>(in));
  tensor::Tensor t(shape);
  auto data = t.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw std::runtime_error("serialize: truncated tensor data");
  return t;
}

void WriteParameters(std::ostream& out, Module& module) {
  const auto params = module.Parameters();
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(params.size()));
  for (const auto* p : params) WriteTensor(out, p->value());
}

void ReadParameters(std::istream& in, Module& module) {
  const auto params = module.Parameters();
  const auto count = ReadPod<std::uint32_t>(in);
  if (count != params.size()) {
    throw std::runtime_error("serialize: parameter count mismatch");
  }
  std::vector<tensor::Tensor> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) loaded.push_back(ReadTensor(in));
  module.RestoreParameters(loaded);  // validates shapes
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& in) {
  const auto len = ReadPod<std::uint32_t>(in);
  if (len > (1u << 20)) throw std::runtime_error("serialize: implausible string length");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("serialize: truncated string");
  return s;
}

void WriteStateDict(std::ostream& out, Module& module) {
  const auto named = module.NamedParameters();
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(named.size()));
  for (const NamedParameter& p : named) {
    WriteString(out, p.name);
    WriteTensor(out, p.variable->value());
  }
}

void ReadStateDict(std::istream& in, Module& module) {
  const auto named = module.NamedParameters();
  std::unordered_map<std::string, autograd::Variable*> by_name;
  by_name.reserve(named.size());
  for (const NamedParameter& p : named) {
    if (!by_name.emplace(p.name, p.variable).second) {
      throw std::runtime_error("serialize: duplicate parameter name " + p.name);
    }
  }
  const auto count = ReadPod<std::uint32_t>(in);
  if (count != named.size()) {
    throw std::runtime_error("serialize: state dict has " + std::to_string(count) +
                             " parameters, module expects " + std::to_string(named.size()));
  }
  // Stage into a scratch map first so a mid-stream failure leaves the module
  // untouched.
  std::unordered_map<std::string, tensor::Tensor> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = ReadString(in);
    tensor::Tensor t = ReadTensor(in);
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error("serialize: unexpected parameter " + name + " in state dict");
    }
    if (!it->second->value().SameShape(t)) {
      throw std::runtime_error("serialize: shape mismatch for parameter " + name);
    }
    if (!loaded.emplace(std::move(name), std::move(t)).second) {
      throw std::runtime_error("serialize: state dict repeats a parameter");
    }
  }
  for (const NamedParameter& p : named) {
    p.variable->mutable_value() = loaded.at(p.name);
  }
}

void SaveParameters(const std::string& path, Module& module) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("serialize: cannot open " + path + " for writing");
  WriteParameters(out, module);
}

void LoadParameters(const std::string& path, Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("serialize: cannot open " + path);
  ReadParameters(in, module);
}

}  // namespace predtop::nn

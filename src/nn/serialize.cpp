#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "fault/status.h"
#include "nn/infer.h"

namespace predtop::nn {

namespace {

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw fault::CorruptionError("serialize: truncated stream");
  return value;
}

/// Hard cap applied when the stream is not seekable and the remaining size is
/// unknowable — far above any real checkpoint, far below a hostile u32/u64.
constexpr std::uint64_t kMaxBlobBytes = 1ull << 30;

}  // namespace

std::optional<std::uint64_t> RemainingBytes(std::istream& in) {
  const auto state = in.rdstate();
  const std::istream::pos_type pos = in.tellg();
  if (!in || pos == std::istream::pos_type(-1)) {
    in.clear(state);
    return std::nullopt;
  }
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  if (!in || end == std::istream::pos_type(-1) || end < pos) {
    in.clear(state);
    in.seekg(pos);
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(end - pos);
}

void CheckClaimedSize(std::istream& in, std::uint64_t claimed_bytes, const char* what) {
  // A corrupt or hostile length prefix must fail *before* the allocation it
  // sizes: checkpoints are a few MB, so a multi-GB claim is always garbage.
  if (const auto remaining = RemainingBytes(in)) {
    if (claimed_bytes > *remaining) {
      throw fault::CorruptionError(
          std::string("serialize: ") + what + " claims " + std::to_string(claimed_bytes) +
          " bytes but only " + std::to_string(*remaining) + " remain in the stream");
    }
  } else if (claimed_bytes > kMaxBlobBytes) {
    throw fault::CorruptionError(std::string("serialize: ") + what + " claims " +
                                 std::to_string(claimed_bytes) +
                                 " bytes on a non-seekable stream (cap " +
                                 std::to_string(kMaxBlobBytes) + ")");
  }
}

void WriteTensor(std::ostream& out, const tensor::Tensor& t) {
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(t.rank()));
  for (const std::int64_t d : t.shape()) WritePod<std::int64_t>(out, d);
  const auto data = t.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
}

tensor::Tensor ReadTensor(std::istream& in) {
  const auto rank = ReadPod<std::uint32_t>(in);
  if (rank > 8) throw fault::CorruptionError("serialize: implausible tensor rank");
  tensor::Shape shape;
  std::uint64_t numel = 1;
  for (std::uint32_t i = 0; i < rank; ++i) {
    const std::int64_t d = ReadPod<std::int64_t>(in);
    if (d < 0) throw fault::CorruptionError("serialize: negative tensor dimension");
    const auto ud = static_cast<std::uint64_t>(d);
    if (ud == 0) {
      numel = 0;
    } else if (numel > std::numeric_limits<std::uint64_t>::max() / ud) {
      throw fault::CorruptionError("serialize: tensor element count overflows");
    } else {
      numel *= ud;
    }
    shape.push_back(d);
  }
  CheckClaimedSize(in, numel * sizeof(float), "tensor payload");
  tensor::Tensor t(shape);
  auto data = t.data();
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) throw fault::CorruptionError("serialize: truncated tensor data");
  return t;
}

void WriteParameters(std::ostream& out, Module& module) {
  const auto params = module.Parameters();
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(params.size()));
  for (const auto* p : params) WriteTensor(out, p->value());
}

void ReadParameters(std::istream& in, Module& module) {
  const auto params = module.Parameters();
  const auto count = ReadPod<std::uint32_t>(in);
  if (count != params.size()) {
    throw fault::CorruptionError("serialize: parameter count mismatch");
  }
  std::vector<tensor::Tensor> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) loaded.push_back(ReadTensor(in));
  module.RestoreParameters(loaded);  // validates shapes
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& in) {
  const auto len = ReadPod<std::uint32_t>(in);
  if (len > (1u << 20)) {
    throw fault::CorruptionError("serialize: implausible string length");
  }
  CheckClaimedSize(in, len, "string");
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw fault::CorruptionError("serialize: truncated string");
  return s;
}

void WriteStateDict(std::ostream& out, Module& module) {
  const auto named = module.NamedParameters();
  WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(named.size()));
  for (const NamedParameter& p : named) {
    WriteString(out, p.name);
    WriteTensor(out, p.variable->value());
  }
}

void ReadStateDict(std::istream& in, Module& module) {
  const auto named = module.NamedParameters();
  std::unordered_map<std::string, autograd::Variable*> by_name;
  by_name.reserve(named.size());
  for (const NamedParameter& p : named) {
    if (!by_name.emplace(p.name, p.variable).second) {
      throw fault::CorruptionError("serialize: duplicate parameter name " + p.name);
    }
  }
  const auto count = ReadPod<std::uint32_t>(in);
  if (count != named.size()) {
    throw fault::CorruptionError("serialize: state dict has " + std::to_string(count) +
                                 " parameters, module expects " +
                                 std::to_string(named.size()));
  }
  // Stage into a scratch map first so a mid-stream failure leaves the module
  // untouched.
  std::unordered_map<std::string, tensor::Tensor> loaded;
  loaded.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = ReadString(in);
    tensor::Tensor t = ReadTensor(in);
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw fault::CorruptionError("serialize: unexpected parameter " + name +
                                   " in state dict");
    }
    if (!it->second->value().SameShape(t)) {
      throw fault::CorruptionError("serialize: shape mismatch for parameter " + name);
    }
    if (!loaded.emplace(std::move(name), std::move(t)).second) {
      throw fault::CorruptionError("serialize: state dict repeats a parameter");
    }
  }
  for (const NamedParameter& p : named) {
    p.variable->mutable_value() = loaded.at(p.name);
  }
  BumpParameterEpoch();  // cached packed weights must repack
}

void SaveParameters(const std::string& path, Module& module) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw fault::IoError("serialize: cannot open " + path + " for writing");
  WriteParameters(out, module);
  if (!out) throw fault::IoError("serialize: write failed for " + path);
}

void LoadParameters(const std::string& path, Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw fault::IoError("serialize: cannot open " + path);
  ReadParameters(in, module);
}

}  // namespace predtop::nn

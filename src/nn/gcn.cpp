#include "nn/gcn.h"

namespace predtop::nn {

using autograd::Variable;

GcnConv::GcnConv(std::int64_t in_features, std::int64_t out_features, util::Rng& rng)
    : linear_(in_features, out_features, rng) {}

Variable GcnConv::Forward(const Variable& x, std::shared_ptr<const tensor::Csr> adj_norm,
                          std::shared_ptr<const tensor::Csr> adj_norm_t) const {
  // (Â (X W)) is cheaper than ((Â X) W) when out < in, and equivalent.
  return autograd::SpMM(std::move(adj_norm), std::move(adj_norm_t), linear_.Forward(x));
}

tensor::MatRef GcnConv::InferForward(tensor::ConstMat x, const tensor::Csr& adj_norm,
                                     InferenceContext& ctx) const {
  return infer::SpMM(ctx, adj_norm, linear_.InferForward(x, ctx));
}

std::vector<Variable*> GcnConv::Parameters() { return linear_.Parameters(); }

std::vector<NamedParameter> GcnConv::NamedParameters() {
  std::vector<NamedParameter> out;
  AppendNamedParameters(out, "linear", linear_);
  return out;
}

}  // namespace predtop::nn
